// Package netpkt encodes and decodes the packet headers that the paper's
// monitoring infrastructure records: every packet on the tapped OC-12 links
// is timestamped and its first 44 bytes are kept, enough for the IPv4 header
// plus the TCP/UDP ports. This package is a stdlib-only, allocation-free
// equivalent of the slice of gopacket the measurement pipeline needs:
// IPv4/TCP/UDP header marshalling, the 5-tuple flow key, and destination
// /24-prefix keys (the paper's two flow definitions, §III).
package netpkt

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// Protocol numbers (IANA).
const (
	ProtoTCP uint8 = 6
	ProtoUDP uint8 = 17
)

// HeaderLen is the number of bytes recorded per packet, matching the paper's
// 44-byte capture: a 20-byte IPv4 header followed by the first 24 bytes of
// the transport header (enough for TCP's fixed header, padded for UDP).
const HeaderLen = 44

// ipv4HeaderLen is the length of an option-less IPv4 header.
const ipv4HeaderLen = 20

// Errors returned by the decoder.
var (
	ErrTruncated   = errors.New("netpkt: truncated header")
	ErrNotIPv4     = errors.New("netpkt: not an IPv4 packet")
	ErrBadIHL      = errors.New("netpkt: bad IPv4 header length")
	ErrUnsupported = errors.New("netpkt: unsupported transport protocol")
)

// IPv4Addr is an IPv4 address in wire order. A fixed array keeps flow keys
// comparable and hashable without allocation (the same trade-off gopacket
// makes for Endpoint).
type IPv4Addr [4]byte

// String formats the address in dotted-quad notation.
func (a IPv4Addr) String() string {
	return fmt.Sprintf("%d.%d.%d.%d", a[0], a[1], a[2], a[3])
}

// Uint32 returns the address as a big-endian integer.
func (a IPv4Addr) Uint32() uint32 { return binary.BigEndian.Uint32(a[:]) }

// AddrFromUint32 builds an address from a big-endian integer.
func AddrFromUint32(v uint32) IPv4Addr {
	var a IPv4Addr
	binary.BigEndian.PutUint32(a[:], v)
	return a
}

// Prefix24 returns the /24 prefix of the address (last octet zeroed).
func (a IPv4Addr) Prefix24() IPv4Addr {
	a[3] = 0
	return a
}

// PrefixN returns the address masked to the first n bits (0 ≤ n ≤ 32).
// The paper suggests routable-prefix aggregation (e.g. /8, /16) as an
// extension of the /24 flow definition.
func (a IPv4Addr) PrefixN(n int) IPv4Addr {
	if n <= 0 {
		return IPv4Addr{}
	}
	if n >= 32 {
		return a
	}
	v := a.Uint32() &^ (1<<(32-uint(n)) - 1)
	return AddrFromUint32(v)
}

// Header is the decoded view of a 44-byte packet record.
type Header struct {
	SrcIP    IPv4Addr
	DstIP    IPv4Addr
	Protocol uint8
	SrcPort  uint16
	DstPort  uint16
	// TotalLen is the IPv4 total length field: header plus payload bytes.
	// Flow sizes in the paper are measured in bytes on the wire, so this is
	// the per-packet contribution to a flow's size S.
	TotalLen uint16
	// TTL is kept because anomaly detection (e.g. DoS fingerprinting) can
	// use its distribution.
	TTL uint8
}

// FlowKey is the paper's first flow definition: the 5-tuple
// (src IP, dst IP, src port, dst port, protocol). Comparable, so it can key
// a map directly.
type FlowKey struct {
	SrcIP    IPv4Addr
	DstIP    IPv4Addr
	SrcPort  uint16
	DstPort  uint16
	Protocol uint8
}

// String formats the key in the usual a:p -> b:q/proto notation.
func (k FlowKey) String() string {
	return fmt.Sprintf("%s:%d->%s:%d/%d", k.SrcIP, k.SrcPort, k.DstIP, k.DstPort, k.Protocol)
}

// PrefixKey is the paper's second flow definition: the destination /24
// address prefix.
type PrefixKey struct {
	DstPrefix IPv4Addr
}

// String formats the key as CIDR.
func (k PrefixKey) String() string { return k.DstPrefix.String() + "/24" }

// Key5Tuple returns the 5-tuple flow key for a decoded header. The value
// receiver is deliberate: flow assembly calls this through an opaque
// function value on its per-packet path, and a pointer receiver would force
// every packet record to escape to the heap there.
func (h Header) Key5Tuple() FlowKey {
	return FlowKey{
		SrcIP:    h.SrcIP,
		DstIP:    h.DstIP,
		SrcPort:  h.SrcPort,
		DstPort:  h.DstPort,
		Protocol: h.Protocol,
	}
}

// KeyPrefix returns the destination /24 prefix key for a decoded header
// (value receiver for the same escape reason as Key5Tuple).
func (h Header) KeyPrefix() PrefixKey {
	return PrefixKey{DstPrefix: h.DstIP.Prefix24()}
}

// Packed-column layout: the batch-columnar measurement path carries each
// packet's header as two 64-bit words instead of a Header struct, so flow
// keys are mask-and-shift derivations over plain integer columns. The
// packing is lossless — together with the wire length it round-trips the
// whole Header — and places the fields so every flow definition is a cheap
// mask: the 5-tuple is (src, dst &^ PackedTTLMask), a destination /n prefix
// is high bits of dst >> PackedAddrShift.
const (
	// PackedAddrShift positions the IPv4 address in a packed word.
	PackedAddrShift = 32
	// PackedPortShift positions the transport port in a packed word.
	PackedPortShift = 16
	// PackedTTLMask masks the TTL byte out of a packed dst word (the TTL
	// rides in the column for lossless round-trips but is not flow-key
	// material).
	PackedTTLMask = 0xFF
)

// Packed returns the header's two packed key columns:
// src = srcIP<<32 | srcPort<<16 | protocol, dst = dstIP<<32 | dstPort<<16 | TTL.
func (h Header) Packed() (src, dst uint64) {
	src = uint64(h.SrcIP.Uint32())<<PackedAddrShift |
		uint64(h.SrcPort)<<PackedPortShift |
		uint64(h.Protocol)
	dst = uint64(h.DstIP.Uint32())<<PackedAddrShift |
		uint64(h.DstPort)<<PackedPortShift |
		uint64(h.TTL)
	return src, dst
}

// HeaderFromPacked reconstructs the Header a Packed call encoded, given the
// wire length carried separately in a block's size column.
func HeaderFromPacked(src, dst uint64, totalLen uint16) Header {
	return Header{
		SrcIP:    AddrFromUint32(uint32(src >> PackedAddrShift)),
		DstIP:    AddrFromUint32(uint32(dst >> PackedAddrShift)),
		Protocol: uint8(src),
		SrcPort:  uint16(src >> PackedPortShift),
		DstPort:  uint16(dst >> PackedPortShift),
		TotalLen: totalLen,
		TTL:      uint8(dst),
	}
}

// Marshal encodes the header into buf, which must be at least HeaderLen
// bytes, and returns the number of bytes written (always HeaderLen).
// The layout is a valid option-less IPv4 header followed by the transport
// ports at their on-wire offsets; remaining transport bytes are zero.
func (h *Header) Marshal(buf []byte) (int, error) {
	if len(buf) < HeaderLen {
		return 0, fmt.Errorf("netpkt: marshal buffer too small: %d < %d", len(buf), HeaderLen)
	}
	for i := 0; i < HeaderLen; i++ {
		buf[i] = 0
	}
	buf[0] = 0x45 // version 4, IHL 5
	binary.BigEndian.PutUint16(buf[2:4], h.TotalLen)
	buf[8] = h.TTL
	buf[9] = h.Protocol
	copy(buf[12:16], h.SrcIP[:])
	copy(buf[16:20], h.DstIP[:])
	binary.BigEndian.PutUint16(buf[20:22], h.SrcPort)
	binary.BigEndian.PutUint16(buf[22:24], h.DstPort)
	// IPv4 header checksum over the first 20 bytes.
	binary.BigEndian.PutUint16(buf[10:12], ipChecksum(buf[:ipv4HeaderLen]))
	return HeaderLen, nil
}

// Unmarshal decodes a packet record. buf must hold at least the IPv4 header
// and the transport ports; full 44-byte records always qualify. The IPv4
// checksum is not verified (the capture hardware already did), but version
// and IHL are.
func (h *Header) Unmarshal(buf []byte) error {
	if len(buf) < ipv4HeaderLen {
		return ErrTruncated
	}
	if buf[0]>>4 != 4 {
		return ErrNotIPv4
	}
	ihl := int(buf[0]&0x0f) * 4
	if ihl < ipv4HeaderLen {
		return ErrBadIHL
	}
	h.TotalLen = binary.BigEndian.Uint16(buf[2:4])
	h.TTL = buf[8]
	h.Protocol = buf[9]
	copy(h.SrcIP[:], buf[12:16])
	copy(h.DstIP[:], buf[16:20])
	h.SrcPort, h.DstPort = 0, 0
	switch h.Protocol {
	case ProtoTCP, ProtoUDP:
		if len(buf) < ihl+4 {
			return ErrTruncated
		}
		h.SrcPort = binary.BigEndian.Uint16(buf[ihl : ihl+2])
		h.DstPort = binary.BigEndian.Uint16(buf[ihl+2 : ihl+4])
	default:
		// Other protocols (ICMP, GRE, ...) are still valid flows at the
		// prefix level; ports stay zero so the 5-tuple degenerates to the
		// (src, dst, proto) triple, matching what NetFlow does.
	}
	return nil
}

// ipChecksum computes the standard Internet checksum of b (whose checksum
// field must be zero).
func ipChecksum(b []byte) uint16 {
	var sum uint32
	for i := 0; i+1 < len(b); i += 2 {
		sum += uint32(binary.BigEndian.Uint16(b[i : i+2]))
	}
	if len(b)%2 == 1 {
		sum += uint32(b[len(b)-1]) << 8
	}
	for sum > 0xffff {
		sum = (sum >> 16) + (sum & 0xffff)
	}
	return ^uint16(sum)
}

// ValidateChecksum reports whether the IPv4 header checksum in an encoded
// record is correct. Used by tests and by the pcap importer to reject
// corrupt records.
func ValidateChecksum(buf []byte) bool {
	if len(buf) < ipv4HeaderLen {
		return false
	}
	var sum uint32
	for i := 0; i < ipv4HeaderLen; i += 2 {
		sum += uint32(binary.BigEndian.Uint16(buf[i : i+2]))
	}
	for sum > 0xffff {
		sum = (sum >> 16) + (sum & 0xffff)
	}
	return uint16(sum) == 0xffff
}
