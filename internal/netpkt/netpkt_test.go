package netpkt

import (
	"testing"
	"testing/quick"
)

func sampleHeader() Header {
	return Header{
		SrcIP:    IPv4Addr{10, 1, 2, 3},
		DstIP:    IPv4Addr{192, 168, 7, 9},
		Protocol: ProtoTCP,
		SrcPort:  443,
		DstPort:  51234,
		TotalLen: 1500,
		TTL:      61,
	}
}

func TestMarshalUnmarshalRoundTrip(t *testing.T) {
	h := sampleHeader()
	buf := make([]byte, HeaderLen)
	n, err := h.Marshal(buf)
	if err != nil {
		t.Fatal(err)
	}
	if n != HeaderLen {
		t.Fatalf("marshal wrote %d bytes, want %d", n, HeaderLen)
	}
	var got Header
	if err := got.Unmarshal(buf); err != nil {
		t.Fatal(err)
	}
	if got != h {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, h)
	}
}

// Property: round trip holds for arbitrary field values.
func TestMarshalUnmarshalProperty(t *testing.T) {
	f := func(src, dst [4]byte, sp, dp, tl uint16, ttl uint8, udp bool) bool {
		h := Header{
			SrcIP: src, DstIP: dst,
			SrcPort: sp, DstPort: dp,
			TotalLen: tl, TTL: ttl,
			Protocol: ProtoTCP,
		}
		if udp {
			h.Protocol = ProtoUDP
		}
		buf := make([]byte, HeaderLen)
		if _, err := h.Marshal(buf); err != nil {
			return false
		}
		var got Header
		if err := got.Unmarshal(buf); err != nil {
			return false
		}
		return got == h
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestMarshalChecksumValid(t *testing.T) {
	h := sampleHeader()
	buf := make([]byte, HeaderLen)
	if _, err := h.Marshal(buf); err != nil {
		t.Fatal(err)
	}
	if !ValidateChecksum(buf) {
		t.Fatal("marshalled header has invalid IPv4 checksum")
	}
	buf[15] ^= 0xff // corrupt a source-address byte
	if ValidateChecksum(buf) {
		t.Fatal("corrupted header passed checksum validation")
	}
}

func TestMarshalBufferTooSmall(t *testing.T) {
	h := sampleHeader()
	if _, err := h.Marshal(make([]byte, 10)); err == nil {
		t.Fatal("short buffer should error")
	}
}

func TestUnmarshalErrors(t *testing.T) {
	var h Header
	if err := h.Unmarshal(make([]byte, 5)); err != ErrTruncated {
		t.Fatalf("short buf: err = %v, want ErrTruncated", err)
	}
	buf := make([]byte, HeaderLen)
	buf[0] = 0x65 // IPv6 version nibble
	if err := h.Unmarshal(buf); err != ErrNotIPv4 {
		t.Fatalf("v6: err = %v, want ErrNotIPv4", err)
	}
	buf[0] = 0x41 // version 4 but IHL 1 (4 bytes, invalid)
	if err := h.Unmarshal(buf); err != ErrBadIHL {
		t.Fatalf("bad ihl: err = %v, want ErrBadIHL", err)
	}
	// TCP packet truncated before the ports.
	good := sampleHeader()
	full := make([]byte, HeaderLen)
	if _, err := good.Marshal(full); err != nil {
		t.Fatal(err)
	}
	if err := h.Unmarshal(full[:21]); err != ErrTruncated {
		t.Fatalf("truncated ports: err = %v, want ErrTruncated", err)
	}
}

func TestUnmarshalNonTransportProtocol(t *testing.T) {
	h := sampleHeader()
	h.Protocol = 1 // ICMP
	h.SrcPort, h.DstPort = 0, 0
	buf := make([]byte, HeaderLen)
	if _, err := h.Marshal(buf); err != nil {
		t.Fatal(err)
	}
	var got Header
	if err := got.Unmarshal(buf); err != nil {
		t.Fatalf("ICMP should decode with zero ports: %v", err)
	}
	if got.SrcPort != 0 || got.DstPort != 0 {
		t.Fatalf("ICMP ports = %d,%d, want 0,0", got.SrcPort, got.DstPort)
	}
}

func TestUnmarshalIHLOptions(t *testing.T) {
	// Build a 24-byte IPv4 header (IHL=6) followed by ports: the decoder
	// must find the ports after the options.
	buf := make([]byte, 28)
	buf[0] = 0x46
	buf[9] = ProtoUDP
	buf[24] = 0x00
	buf[25] = 53 // src port 53
	buf[26] = 0x30
	buf[27] = 0x39 // dst port 12345
	var h Header
	if err := h.Unmarshal(buf); err != nil {
		t.Fatal(err)
	}
	if h.SrcPort != 53 || h.DstPort != 12345 {
		t.Fatalf("ports = %d,%d, want 53,12345", h.SrcPort, h.DstPort)
	}
}

func TestAddrHelpers(t *testing.T) {
	a := IPv4Addr{192, 168, 34, 200}
	if a.String() != "192.168.34.200" {
		t.Fatalf("String = %q", a.String())
	}
	if got := AddrFromUint32(a.Uint32()); got != a {
		t.Fatalf("uint32 round trip: %v", got)
	}
	if got := a.Prefix24(); got != (IPv4Addr{192, 168, 34, 0}) {
		t.Fatalf("Prefix24 = %v", got)
	}
}

func TestPrefixN(t *testing.T) {
	a := IPv4Addr{10, 20, 30, 40}
	cases := []struct {
		n    int
		want IPv4Addr
	}{
		{0, IPv4Addr{0, 0, 0, 0}},
		{8, IPv4Addr{10, 0, 0, 0}},
		{16, IPv4Addr{10, 20, 0, 0}},
		{24, IPv4Addr{10, 20, 30, 0}},
		{32, a},
		{-1, IPv4Addr{0, 0, 0, 0}},
		{40, a},
	}
	for _, c := range cases {
		if got := a.PrefixN(c.n); got != c.want {
			t.Fatalf("PrefixN(%d) = %v, want %v", c.n, got, c.want)
		}
	}
}

func TestFlowKeys(t *testing.T) {
	h := sampleHeader()
	k := h.Key5Tuple()
	if k.SrcIP != h.SrcIP || k.DstPort != h.DstPort || k.Protocol != ProtoTCP {
		t.Fatalf("5-tuple key mismatch: %+v", k)
	}
	p := h.KeyPrefix()
	if p.DstPrefix != (IPv4Addr{192, 168, 7, 0}) {
		t.Fatalf("prefix key = %v", p.DstPrefix)
	}
	// Two packets of the same TCP connection map to the same key; the
	// reverse direction maps to a different key (unidirectional flows, as
	// on a monitored backbone link).
	h2 := h
	h2.TotalLen = 40
	if h2.Key5Tuple() != k {
		t.Fatal("same flow produced different keys")
	}
	rev := Header{SrcIP: h.DstIP, DstIP: h.SrcIP, SrcPort: h.DstPort, DstPort: h.SrcPort, Protocol: ProtoTCP}
	if rev.Key5Tuple() == k {
		t.Fatal("reverse direction must be a distinct flow")
	}
}

func TestKeyStrings(t *testing.T) {
	h := sampleHeader()
	if s := h.Key5Tuple().String(); s != "10.1.2.3:443->192.168.7.9:51234/6" {
		t.Fatalf("FlowKey.String = %q", s)
	}
	if s := h.KeyPrefix().String(); s != "192.168.7.0/24" {
		t.Fatalf("PrefixKey.String = %q", s)
	}
}

func TestFlowKeyIsMapKey(t *testing.T) {
	m := map[FlowKey]int{}
	h := sampleHeader()
	m[h.Key5Tuple()]++
	m[h.Key5Tuple()]++
	if m[h.Key5Tuple()] != 2 {
		t.Fatal("FlowKey not usable as map key")
	}
}

func BenchmarkUnmarshal(b *testing.B) {
	h := sampleHeader()
	buf := make([]byte, HeaderLen)
	if _, err := h.Marshal(buf); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	var out Header
	for i := 0; i < b.N; i++ {
		if err := out.Unmarshal(buf); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMarshal(b *testing.B) {
	h := sampleHeader()
	buf := make([]byte, HeaderLen)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := h.Marshal(buf); err != nil {
			b.Fatal(err)
		}
	}
}

// The packed-column representation must round-trip every header field and
// place the key material where the flow definitions mask it.
func TestPackedRoundTrip(t *testing.T) {
	hdrs := []Header{
		{
			SrcIP: IPv4Addr{10, 1, 2, 3}, DstIP: IPv4Addr{192, 168, 7, 9},
			Protocol: ProtoTCP, SrcPort: 443, DstPort: 51234,
			TotalLen: 1500, TTL: 64,
		},
		{}, // zero header
		{
			SrcIP: IPv4Addr{255, 255, 255, 255}, DstIP: IPv4Addr{255, 255, 255, 255},
			Protocol: 255, SrcPort: 65535, DstPort: 65535,
			TotalLen: 65535, TTL: 255,
		},
		{DstIP: IPv4Addr{172, 16, 5, 200}, Protocol: ProtoUDP, TTL: 1},
	}
	for i, h := range hdrs {
		src, dst := h.Packed()
		got := HeaderFromPacked(src, dst, h.TotalLen)
		if got != h {
			t.Fatalf("header %d: round trip %+v != %+v", i, got, h)
		}
		// dst IP occupies the top 32 bits: prefix masking on the packed word
		// must agree with PrefixN on the address.
		for _, n := range []int{8, 16, 24} {
			masked := (dst >> PackedAddrShift) &^ (1<<uint(32-n) - 1)
			if want := uint64(h.DstIP.PrefixN(n).Uint32()); masked != want {
				t.Fatalf("header %d: packed /%d prefix %x != PrefixN %x", i, n, masked, want)
			}
		}
		// TTL must be outside the 5-tuple key material.
		h2 := h
		h2.TTL ^= 0xA5
		src2, dst2 := h2.Packed()
		if src2 != src || dst2&^uint64(PackedTTLMask) != dst&^uint64(PackedTTLMask) {
			t.Fatalf("header %d: TTL leaked into key bits", i)
		}
	}
}
