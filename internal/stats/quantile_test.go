package stats

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestQuantileBasics(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	cases := []struct{ q, want float64 }{
		{0, 1}, {0.25, 2}, {0.5, 3}, {0.75, 4}, {1, 5},
	}
	for _, c := range cases {
		got, err := Quantile(xs, c.q)
		if err != nil {
			t.Fatal(err)
		}
		if !almostEqual(got, c.want, 1e-12) {
			t.Fatalf("Quantile(%g) = %g, want %g", c.q, got, c.want)
		}
	}
}

func TestQuantileErrors(t *testing.T) {
	if _, err := Quantile(nil, 0.5); err != ErrEmpty {
		t.Fatalf("empty err = %v, want ErrEmpty", err)
	}
	if _, err := Quantile([]float64{1}, 1.5); err == nil {
		t.Fatal("expected error for q > 1")
	}
	if _, err := Quantile([]float64{1}, math.NaN()); err == nil {
		t.Fatal("expected error for NaN q")
	}
}

func TestQuantileDoesNotMutateInput(t *testing.T) {
	xs := []float64{5, 1, 3}
	if _, err := Quantile(xs, 0.5); err != nil {
		t.Fatal(err)
	}
	if xs[0] != 5 || xs[1] != 1 || xs[2] != 3 {
		t.Fatalf("input mutated: %v", xs)
	}
}

// Property: quantile is monotone in q and bounded by min/max.
func TestQuantileMonotone(t *testing.T) {
	f := func(raw []float64, qa, qb float64) bool {
		xs := sanitize(raw)
		if len(xs) == 0 {
			return true
		}
		qa, qb = math.Abs(math.Mod(qa, 1)), math.Abs(math.Mod(qb, 1))
		if qa > qb {
			qa, qb = qb, qa
		}
		va, err := Quantile(xs, qa)
		if err != nil {
			return false
		}
		vb, err := Quantile(xs, qb)
		if err != nil {
			return false
		}
		min, max, _ := MinMax(xs)
		return va <= vb+1e-9 && va >= min-1e-9 && vb <= max+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestQQExponentialOnExponentialSample(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	xs := make([]float64, 50000)
	for i := range xs {
		xs[i] = rng.ExpFloat64() * 0.01 // mean 10 ms inter-arrivals
	}
	pts, err := QQExponential(xs, 100)
	if err != nil {
		t.Fatal(err)
	}
	// Central 95% of the plot should hug the diagonal for a true
	// exponential sample.
	dev := QQMaxDeviation(pts, Mean(xs), 0.95)
	if dev > 0.15 {
		t.Fatalf("exponential sample deviates from diagonal: max dev %g means", dev)
	}
}

func TestQQExponentialOnUniformSampleDeviates(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	xs := make([]float64, 20000)
	for i := range xs {
		xs[i] = rng.Float64() // uniform is clearly not exponential
	}
	pts, err := QQExponential(xs, 100)
	if err != nil {
		t.Fatal(err)
	}
	dev := QQMaxDeviation(pts, Mean(xs), 0.95)
	if dev < 0.3 {
		t.Fatalf("uniform sample should deviate strongly, got max dev %g", dev)
	}
}

func TestQQExponentialSorted(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	xs := make([]float64, 1000)
	for i := range xs {
		xs[i] = rng.ExpFloat64()
	}
	pts, err := QQExponential(xs, 50)
	if err != nil {
		t.Fatal(err)
	}
	if !sort.SliceIsSorted(pts, func(i, j int) bool { return pts[i].Theoretical < pts[j].Theoretical }) {
		t.Fatal("theoretical quantiles not increasing")
	}
	if !sort.SliceIsSorted(pts, func(i, j int) bool { return pts[i].Sample <= pts[j].Sample }) {
		t.Fatal("sample quantiles not non-decreasing")
	}
}

func TestQQExponentialEmpty(t *testing.T) {
	if _, err := QQExponential(nil, 10); err != ErrEmpty {
		t.Fatalf("err = %v, want ErrEmpty", err)
	}
}

func TestNormalQuantileKnownValues(t *testing.T) {
	cases := []struct{ q, want float64 }{
		{0.5, 0},
		{0.8413447460685429, 1}, // Φ(1)
		{0.9772498680518208, 2}, // Φ(2)
		{0.99, 2.3263478740408408},
		{0.95, 1.6448536269514722},
		{0.01, -2.3263478740408408},
	}
	for _, c := range cases {
		if got := NormalQuantile(c.q); !almostEqual(got, c.want, 1e-9) {
			t.Fatalf("NormalQuantile(%g) = %.12f, want %.12f", c.q, got, c.want)
		}
	}
}

// Property: NormalCDF(NormalQuantile(q)) == q.
func TestNormalQuantileRoundTrip(t *testing.T) {
	f := func(raw float64) bool {
		q := math.Abs(math.Mod(raw, 1))
		if q < 0.001 || q > 0.999 {
			return true
		}
		return almostEqual(NormalCDF(NormalQuantile(q)), q, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// The 70%-of-time-within-one-sigma claim used in the paper's §V-E.
func TestGaussianOneSigmaCoverage(t *testing.T) {
	cover := NormalCDF(1) - NormalCDF(-1)
	if !almostEqual(cover, 0.6827, 1e-3) {
		t.Fatalf("P(|Z|<1) = %g, want ≈ 0.683 (the paper rounds to 70%%)", cover)
	}
}
