package stats

import (
	"math"
	"sort"
)

// Quantile returns the q-quantile (0 ≤ q ≤ 1) of xs using linear
// interpolation between order statistics (type-7 estimator, the common
// default). The input need not be sorted; it is not modified.
// It returns ErrEmpty for empty input and an error for q outside [0,1].
func Quantile(xs []float64, q float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	if q < 0 || q > 1 || math.IsNaN(q) {
		return 0, errQuantileRange
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	return quantileSorted(s, q), nil
}

var errQuantileRange = errorf("stats: quantile out of [0,1]")

// quantileSorted computes the type-7 quantile on already-sorted data.
func quantileSorted(s []float64, q float64) float64 {
	n := len(s)
	if n == 1 {
		return s[0]
	}
	h := q * float64(n-1)
	lo := int(math.Floor(h))
	hi := lo + 1
	if hi >= n {
		return s[n-1]
	}
	frac := h - float64(lo)
	return s[lo]*(1-frac) + s[hi]*frac
}

// QQPoint is one point of a quantile-quantile plot.
type QQPoint struct {
	Sample      float64 // quantile of the measured data (x-axis in the paper)
	Theoretical float64 // corresponding quantile of the reference distribution
}

// QQExponential returns k points of the quantile-quantile plot of xs against
// an exponential distribution with the same mean, as in the paper's Figures
// 3 and 4 (flow inter-arrival times vs the exponential fit). The i-th point
// uses probability p_i = (i+0.5)/k. A perfectly exponential sample lies on
// the diagonal.
func QQExponential(xs []float64, k int) ([]QQPoint, error) {
	if len(xs) == 0 {
		return nil, ErrEmpty
	}
	if k <= 0 {
		k = 100
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	mean := Mean(s)
	pts := make([]QQPoint, k)
	for i := 0; i < k; i++ {
		p := (float64(i) + 0.5) / float64(k)
		pts[i] = QQPoint{
			Sample:      quantileSorted(s, p),
			Theoretical: -mean * math.Log(1-p), // exponential quantile function
		}
	}
	return pts, nil
}

// QQMaxDeviation returns the maximum relative deviation |sample-theoretical|
// normalised by the sample mean over the central portion of a qq-plot
// (probabilities below pmax). It is a scalar summary used by the test suite
// and the experiment harness to assert "close to exponential" without eyes.
func QQMaxDeviation(pts []QQPoint, mean, pmax float64) float64 {
	if mean == 0 || len(pts) == 0 {
		return 0
	}
	n := int(pmax * float64(len(pts)))
	if n > len(pts) {
		n = len(pts)
	}
	var worst float64
	for _, p := range pts[:n] {
		d := math.Abs(p.Sample-p.Theoretical) / mean
		if d > worst {
			worst = d
		}
	}
	return worst
}

// NormalQuantile returns z_q, the q-quantile of the standard normal
// distribution: P(Z ≤ z_q) = q. It is the function β(·) of the paper's §V-E
// used for Gaussian link dimensioning, e.g. NormalQuantile(0.99) ≈ 2.33 so a
// link provisioned at E[R] + 2.33 σ is congested less than 1% of the time.
func NormalQuantile(q float64) float64 {
	return math.Sqrt2 * math.Erfinv(2*q-1)
}

// NormalCDF returns P(Z ≤ z) for a standard normal Z.
func NormalCDF(z float64) float64 {
	return 0.5 * (1 + math.Erf(z/math.Sqrt2))
}

// errorf is a tiny helper to build sentinel errors without importing fmt in
// hot paths.
type constError string

func (e constError) Error() string { return string(e) }

func errorf(s string) error { return constError(s) }
