package stats

import "math"

// AutoCovariance returns the empirical auto-covariance of xs at lags
// 0..maxLag (inclusive): c[k] = (1/n) Σ_{t=0}^{n-1-k} (x_t - x̄)(x_{t+k} - x̄).
//
// The 1/n normalisation (rather than 1/(n-k)) is the standard choice for
// correlogram analysis: it guarantees a positive semi-definite sequence, which
// the predictor's normal equations (paper eq. 8) rely on.
func AutoCovariance(xs []float64, maxLag int) []float64 {
	n := len(xs)
	if maxLag < 0 {
		maxLag = 0
	}
	c := make([]float64, maxLag+1)
	if n == 0 {
		return c
	}
	m := Mean(xs)
	for k := 0; k <= maxLag && k < n; k++ {
		var s float64
		for t := 0; t+k < n; t++ {
			s += (xs[t] - m) * (xs[t+k] - m)
		}
		c[k] = s / float64(n)
	}
	return c
}

// AutoCorrelation returns the empirical autocorrelation coefficients of xs at
// lags 0..maxLag: r[k] = c[k]/c[0]. r[0] is always 1 for non-degenerate
// samples; a constant series yields all zeros past lag 0.
//
// This is the statistic plotted in the paper's Figures 3-6 (inter-arrival
// times, flow sizes, flow durations) and Figure 8 (total rate).
func AutoCorrelation(xs []float64, maxLag int) []float64 {
	c := AutoCovariance(xs, maxLag)
	r := make([]float64, len(c))
	if c[0] == 0 {
		if len(r) > 0 && len(xs) > 0 {
			r[0] = 1
		}
		return r
	}
	for k := range c {
		r[k] = c[k] / c[0]
	}
	return r
}

// CrossCorrelation returns the zero-lag Pearson correlation coefficient of xs
// and ys (truncated to the shorter length). Used to verify that sizes and
// durations of the same flow are correlated while the sequences {S_n} and
// {D_n} are serially uncorrelated (paper §IV, Assumption 2 discussion).
func CrossCorrelation(xs, ys []float64) float64 {
	n := len(xs)
	if len(ys) < n {
		n = len(ys)
	}
	if n < 2 {
		return 0
	}
	xs, ys = xs[:n], ys[:n]
	mx, my := Mean(xs), Mean(ys)
	var sxy, sxx, syy float64
	for i := 0; i < n; i++ {
		dx, dy := xs[i]-mx, ys[i]-my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 || syy == 0 {
		return 0
	}
	return sxy / (math.Sqrt(sxx) * math.Sqrt(syy))
}
