package stats

import (
	"math"
	"math/rand"
	"testing"
)

func TestHurstIIDNoiseIsHalf(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	xs := make([]float64, 1<<15)
	for i := range xs {
		xs[i] = rng.NormFloat64()
	}
	h, err := HurstAggregatedVariance(xs, 16)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(h-0.5) > 0.07 {
		t.Fatalf("iid noise H = %g, want ≈ 0.5", h)
	}
}

func TestHurstAR1StillShortRange(t *testing.T) {
	// AR(1) has exponentially decaying correlation: asymptotically H = 0.5
	// even though short lags are correlated.
	rng := rand.New(rand.NewSource(2))
	xs := make([]float64, 1<<16)
	for i := 1; i < len(xs); i++ {
		xs[i] = 0.7*xs[i-1] + rng.NormFloat64()
	}
	h, err := HurstAggregatedVariance(xs, 16)
	if err != nil {
		t.Fatal(err)
	}
	if h > 0.72 {
		t.Fatalf("AR(1) H = %g, want well below LRD range", h)
	}
}

func TestHurstLongRangeDependent(t *testing.T) {
	// Superpose many heavy-tailed on/off renewal sources (the Leland et
	// al. construction the paper's §II cites): the aggregate is LRD and
	// the estimator must report H clearly above 0.5.
	rng := rand.New(rand.NewSource(3))
	n := 1 << 15
	xs := make([]float64, n)
	for src := 0; src < 60; src++ {
		pos := 0
		on := src%2 == 0
		for pos < n {
			// Pareto(α=1.4) sojourn lengths: infinite variance.
			u := rng.Float64()
			length := int(3 * math.Pow(1-u, -1/1.4))
			if length < 1 {
				length = 1
			}
			if on {
				for j := pos; j < pos+length && j < n; j++ {
					xs[j]++
				}
			}
			pos += length
			on = !on
		}
	}
	h, err := HurstAggregatedVariance(xs, 16)
	if err != nil {
		t.Fatal(err)
	}
	if h < 0.7 {
		t.Fatalf("heavy-tailed on/off aggregate H = %g, want > 0.7 (LRD)", h)
	}
}

func TestHurstErrors(t *testing.T) {
	if _, err := HurstAggregatedVariance(make([]float64, 10), 8); err == nil {
		t.Fatal("short series should be rejected")
	}
	constant := make([]float64, 4096)
	if _, err := HurstAggregatedVariance(constant, 8); err == nil {
		t.Fatal("constant series should be rejected (no variance levels)")
	}
}

func TestSlope(t *testing.T) {
	x := []float64{1, 2, 3, 4}
	y := []float64{3, 5, 7, 9}
	s, err := slope(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(s-2) > 1e-12 {
		t.Fatalf("slope = %g, want 2", s)
	}
	if _, err := slope([]float64{1}, []float64{2}); err == nil {
		t.Fatal("single point should be rejected")
	}
	if _, err := slope([]float64{1, 1}, []float64{2, 3}); err == nil {
		t.Fatal("degenerate x should be rejected")
	}
}
