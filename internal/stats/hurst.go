package stats

import (
	"fmt"
	"math"
)

// HurstAggregatedVariance estimates the Hurst parameter of a stationary
// series by the aggregated-variance method used throughout the
// self-similarity literature the paper's §II surveys (Leland et al.,
// Paxson & Floyd): the series is averaged over blocks of size m, and for a
// self-similar process Var(X^(m)) ∝ m^(2H-2), so the slope β of
// log Var(X^(m)) against log m gives H = 1 + β/2.
//
// H ≈ 0.5 indicates short-range dependence (Poisson-like smoothing under
// aggregation), H → 1 long-range dependence (aggregation does not smooth —
// the paper's footnote 2 caveat about eq. 7). Block sizes grow
// geometrically from 1 until fewer than minBlocks blocks remain.
func HurstAggregatedVariance(xs []float64, minBlocks int) (float64, error) {
	if minBlocks < 4 {
		minBlocks = 8
	}
	if len(xs) < 4*minBlocks {
		return 0, fmt.Errorf("stats: series of %d too short for Hurst estimation", len(xs))
	}
	var logM, logV []float64
	for m := 1; len(xs)/m >= minBlocks; m *= 2 {
		nb := len(xs) / m
		block := make([]float64, nb)
		for i := 0; i < nb; i++ {
			var s float64
			for j := 0; j < m; j++ {
				s += xs[i*m+j]
			}
			block[i] = s / float64(m)
		}
		v := PopVariance(block)
		if v <= 0 {
			break
		}
		logM = append(logM, math.Log(float64(m)))
		logV = append(logV, math.Log(v))
	}
	if len(logM) < 3 {
		return 0, fmt.Errorf("stats: not enough aggregation levels (%d)", len(logM))
	}
	beta, err := slope(logM, logV)
	if err != nil {
		return 0, err
	}
	h := 1 + beta/2
	// Estimation noise can push H slightly outside [0, 1]; clamp to the
	// meaningful range rather than reporting an impossible parameter.
	if h < 0 {
		h = 0
	}
	if h > 1 {
		h = 1
	}
	return h, nil
}

// slope returns the least-squares slope of y against x.
func slope(x, y []float64) (float64, error) {
	if len(x) != len(y) || len(x) < 2 {
		return 0, fmt.Errorf("stats: slope needs matched series of >= 2 points")
	}
	mx, my := Mean(x), Mean(y)
	var sxy, sxx float64
	for i := range x {
		dx := x[i] - mx
		sxy += dx * (y[i] - my)
		sxx += dx * dx
	}
	if sxx == 0 {
		return 0, fmt.Errorf("stats: degenerate x for slope")
	}
	return sxy / sxx, nil
}
