package stats

import (
	"math"
	"math/rand"
	"testing"
)

func TestAutoCorrelationLagZeroIsOne(t *testing.T) {
	xs := []float64{1, 5, 2, 8, 3, 9, 1}
	r := AutoCorrelation(xs, 3)
	if r[0] != 1 {
		t.Fatalf("r[0] = %g, want 1", r[0])
	}
}

func TestAutoCorrelationConstantSeries(t *testing.T) {
	xs := []float64{4, 4, 4, 4, 4}
	r := AutoCorrelation(xs, 3)
	if r[0] != 1 {
		t.Fatalf("r[0] = %g, want 1 for degenerate series", r[0])
	}
	for k := 1; k < len(r); k++ {
		if r[k] != 0 {
			t.Fatalf("r[%d] = %g, want 0 for constant series", k, r[k])
		}
	}
}

func TestAutoCorrelationBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	xs := make([]float64, 2000)
	for i := range xs {
		xs[i] = rng.ExpFloat64()
	}
	r := AutoCorrelation(xs, 20)
	for k, v := range r {
		if v < -1-1e-9 || v > 1+1e-9 {
			t.Fatalf("r[%d] = %g out of [-1,1]", k, v)
		}
	}
}

// iid noise should decorrelate: |r[k]| = O(1/sqrt(n)) for k >= 1.
func TestAutoCorrelationIIDDropsToZero(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	n := 20000
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = rng.ExpFloat64()
	}
	r := AutoCorrelation(xs, 10)
	bound := 5 / math.Sqrt(float64(n))
	for k := 1; k <= 10; k++ {
		if math.Abs(r[k]) > bound {
			t.Fatalf("iid series r[%d] = %g, want |r| < %g", k, r[k], bound)
		}
	}
}

// An AR(1) process x_t = phi x_{t-1} + e_t has r[k] ≈ phi^k.
func TestAutoCorrelationAR1(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	const phi = 0.8
	n := 100000
	xs := make([]float64, n)
	for i := 1; i < n; i++ {
		xs[i] = phi*xs[i-1] + rng.NormFloat64()
	}
	r := AutoCorrelation(xs, 5)
	for k := 1; k <= 5; k++ {
		want := math.Pow(phi, float64(k))
		if math.Abs(r[k]-want) > 0.03 {
			t.Fatalf("AR(1) r[%d] = %g, want ≈ %g", k, r[k], want)
		}
	}
}

func TestAutoCovarianceMatchesVariance(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	xs := make([]float64, 1000)
	for i := range xs {
		xs[i] = rng.NormFloat64() * 3
	}
	c := AutoCovariance(xs, 0)
	if want := PopVariance(xs); !almostEqual(c[0], want, 1e-9) {
		t.Fatalf("c[0] = %g, want population variance %g", c[0], want)
	}
}

func TestAutoCovarianceEmptyAndShort(t *testing.T) {
	c := AutoCovariance(nil, 5)
	if len(c) != 6 {
		t.Fatalf("len = %d, want 6", len(c))
	}
	for _, v := range c {
		if v != 0 {
			t.Fatalf("expected zeros for empty input, got %v", c)
		}
	}
	// Lags beyond series length must be zero, not panic.
	c = AutoCovariance([]float64{1, 2}, 10)
	for k := 2; k < len(c); k++ {
		if c[k] != 0 {
			t.Fatalf("c[%d] = %g, want 0 beyond series length", k, c[k])
		}
	}
}

func TestCrossCorrelationPerfect(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	if got := CrossCorrelation(xs, xs); !almostEqual(got, 1, 1e-12) {
		t.Fatalf("self-correlation = %g, want 1", got)
	}
	neg := []float64{-1, -2, -3, -4, -5}
	if got := CrossCorrelation(xs, neg); !almostEqual(got, -1, 1e-12) {
		t.Fatalf("anti-correlation = %g, want -1", got)
	}
}

func TestCrossCorrelationDegenerate(t *testing.T) {
	if got := CrossCorrelation([]float64{1}, []float64{2}); got != 0 {
		t.Fatalf("single point = %g, want 0", got)
	}
	if got := CrossCorrelation([]float64{1, 1, 1}, []float64{1, 2, 3}); got != 0 {
		t.Fatalf("constant x = %g, want 0", got)
	}
}
