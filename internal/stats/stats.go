// Package stats provides the descriptive and inferential statistics used by
// the shot-noise traffic model: sample moments, autocorrelation, empirical
// quantiles, exponential qq-plots, normal quantiles, histograms, and online
// (EWMA and Welford) estimators.
//
// Go's standard library has no statistics package; everything here is built
// on package math only, which keeps the repository dependency-free.
package stats

import (
	"errors"
	"math"
)

// ErrEmpty is returned by functions that need at least one sample.
var ErrEmpty = errors.New("stats: empty sample")

// Sum returns the sum of xs. It uses Kahan compensated summation so that
// long rate series (millions of 200 ms samples) do not lose precision.
func Sum(xs []float64) float64 {
	var sum, comp float64
	for _, x := range xs {
		y := x - comp
		t := sum + y
		comp = (t - sum) - y
		sum = t
	}
	return sum
}

// Mean returns the arithmetic mean of xs, or 0 if xs is empty.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	return Sum(xs) / float64(len(xs))
}

// Variance returns the unbiased sample variance of xs (denominator n-1).
// It returns 0 for samples with fewer than two points.
func Variance(xs []float64) float64 {
	n := len(xs)
	if n < 2 {
		return 0
	}
	m := Mean(xs)
	var ss, comp float64
	for _, x := range xs {
		d := x - m
		y := d*d - comp
		t := ss + y
		comp = (t - ss) - y
		ss = t
	}
	return ss / float64(n-1)
}

// PopVariance returns the population variance of xs (denominator n).
func PopVariance(xs []float64) float64 {
	n := len(xs)
	if n == 0 {
		return 0
	}
	return Variance(xs) * float64(n-1) / float64(n)
}

// StdDev returns the unbiased sample standard deviation of xs.
func StdDev(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// CoV returns the coefficient of variation of xs: standard deviation divided
// by the mean. This is the headline statistic of the paper's validation
// (Figures 9, 10, 12, 13). It returns 0 if the mean is zero.
func CoV(xs []float64) float64 {
	m := Mean(xs)
	if m == 0 {
		return 0
	}
	return StdDev(xs) / m
}

// MinMax returns the smallest and largest values in xs.
// It returns ErrEmpty if xs is empty.
func MinMax(xs []float64) (min, max float64, err error) {
	if len(xs) == 0 {
		return 0, 0, ErrEmpty
	}
	min, max = xs[0], xs[0]
	for _, x := range xs[1:] {
		if x < min {
			min = x
		}
		if x > max {
			max = x
		}
	}
	return min, max, nil
}

// Moments accumulates count, mean and variance in a single streaming pass
// using Welford's algorithm. The zero value is ready to use. It backs the
// paper's three-parameter estimation (λ, E[S], E[S²/D]) without keeping the
// sample in memory.
type Moments struct {
	n    int64
	mean float64
	m2   float64
}

// Add incorporates one observation.
func (m *Moments) Add(x float64) {
	m.n++
	d := x - m.mean
	m.mean += d / float64(m.n)
	m.m2 += d * (x - m.mean)
}

// N returns the number of observations added.
func (m *Moments) N() int64 { return m.n }

// Mean returns the running mean.
func (m *Moments) Mean() float64 { return m.mean }

// Variance returns the running unbiased sample variance.
func (m *Moments) Variance() float64 {
	if m.n < 2 {
		return 0
	}
	return m.m2 / float64(m.n-1)
}

// StdDev returns the running sample standard deviation.
func (m *Moments) StdDev() float64 { return math.Sqrt(m.Variance()) }

// CoV returns the running coefficient of variation (0 if the mean is 0).
func (m *Moments) CoV() float64 {
	if m.mean == 0 {
		return 0
	}
	return m.StdDev() / m.mean
}

// Merge combines another accumulator into m (parallel Welford merge), so
// per-interval statistics can be folded into per-trace statistics.
func (m *Moments) Merge(o Moments) {
	if o.n == 0 {
		return
	}
	if m.n == 0 {
		*m = o
		return
	}
	n := m.n + o.n
	d := o.mean - m.mean
	m.m2 += o.m2 + d*d*float64(m.n)*float64(o.n)/float64(n)
	m.mean += d * float64(o.n) / float64(n)
	m.n = n
}
