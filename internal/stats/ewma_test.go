package stats

import (
	"math"
	"math/rand"
	"testing"
)

func TestNewEWMAValidation(t *testing.T) {
	for _, bad := range []float64{0, -0.1, 1.1, math.NaN()} {
		if _, err := NewEWMA(bad); err == nil {
			t.Fatalf("NewEWMA(%g) should fail", bad)
		}
	}
	if _, err := NewEWMA(1); err != nil {
		t.Fatalf("NewEWMA(1) should be accepted: %v", err)
	}
}

func TestEWMAFirstObservationInitialises(t *testing.T) {
	e, _ := NewEWMA(0.1)
	e.Add(42)
	if e.Value() != 42 {
		t.Fatalf("first value = %g, want 42 (no zero bias)", e.Value())
	}
}

func TestEWMAUpdateRule(t *testing.T) {
	e, _ := NewEWMA(0.25)
	e.Add(8)
	e.Add(4)
	// (1-0.25)*8 + 0.25*4 = 7
	if e.Value() != 7 {
		t.Fatalf("value = %g, want 7", e.Value())
	}
	if e.N() != 2 {
		t.Fatalf("n = %d, want 2", e.N())
	}
}

func TestEWMAConvergesToStationaryMean(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	e, _ := NewEWMA(0.02)
	const mean = 12.5
	for i := 0; i < 20000; i++ {
		e.Add(mean + rng.NormFloat64())
	}
	if math.Abs(e.Value()-mean) > 0.3 {
		t.Fatalf("EWMA = %g, want ≈ %g", e.Value(), mean)
	}
}

func TestEWMATracksLevelShift(t *testing.T) {
	e, _ := NewEWMA(0.1)
	for i := 0; i < 200; i++ {
		e.Add(10)
	}
	for i := 0; i < 200; i++ {
		e.Add(50) // regime change, e.g. new customer on the link (§VII-A)
	}
	if math.Abs(e.Value()-50) > 0.1 {
		t.Fatalf("EWMA did not track shift: %g", e.Value())
	}
}

func TestEWMASmallerAlphaReactsSlower(t *testing.T) {
	fast, _ := NewEWMA(0.5)
	slow, _ := NewEWMA(0.01)
	fast.Add(0)
	slow.Add(0)
	for i := 0; i < 10; i++ {
		fast.Add(100)
		slow.Add(100)
	}
	if fast.Value() <= slow.Value() {
		t.Fatalf("fast (%g) should exceed slow (%g) after a step change",
			fast.Value(), slow.Value())
	}
}
