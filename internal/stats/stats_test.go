package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool {
	if math.IsNaN(a) || math.IsNaN(b) {
		return false
	}
	return math.Abs(a-b) <= tol
}

func TestSumEmpty(t *testing.T) {
	if got := Sum(nil); got != 0 {
		t.Fatalf("Sum(nil) = %g, want 0", got)
	}
}

func TestSumKahanPrecision(t *testing.T) {
	// 1e8 + many tiny values: naive summation loses the tiny values.
	xs := make([]float64, 1_000_001)
	xs[0] = 1e8
	for i := 1; i < len(xs); i++ {
		xs[i] = 1e-8
	}
	got := Sum(xs)
	want := 1e8 + 1e-8*1e6
	if !almostEqual(got, want, 1e-6) {
		t.Fatalf("Sum = %.12f, want %.12f", got, want)
	}
}

func TestMeanSimple(t *testing.T) {
	if got := Mean([]float64{1, 2, 3, 4}); got != 2.5 {
		t.Fatalf("Mean = %g, want 2.5", got)
	}
}

func TestMeanEmpty(t *testing.T) {
	if got := Mean(nil); got != 0 {
		t.Fatalf("Mean(nil) = %g, want 0", got)
	}
}

func TestVarianceKnown(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	// population variance is 4, sample variance is 32/7.
	if got, want := Variance(xs), 32.0/7.0; !almostEqual(got, want, 1e-12) {
		t.Fatalf("Variance = %g, want %g", got, want)
	}
	if got := PopVariance(xs); !almostEqual(got, 4, 1e-12) {
		t.Fatalf("PopVariance = %g, want 4", got)
	}
}

func TestVarianceDegenerate(t *testing.T) {
	if got := Variance([]float64{5}); got != 0 {
		t.Fatalf("Variance of single point = %g, want 0", got)
	}
	if got := Variance(nil); got != 0 {
		t.Fatalf("Variance(nil) = %g, want 0", got)
	}
}

func TestCoVConstantSeries(t *testing.T) {
	if got := CoV([]float64{3, 3, 3, 3}); got != 0 {
		t.Fatalf("CoV of constant series = %g, want 0", got)
	}
}

func TestCoVZeroMean(t *testing.T) {
	if got := CoV([]float64{-1, 1}); got != 0 {
		t.Fatalf("CoV with zero mean = %g, want 0 (guarded)", got)
	}
}

func TestMinMax(t *testing.T) {
	min, max, err := MinMax([]float64{3, -1, 7, 0})
	if err != nil {
		t.Fatal(err)
	}
	if min != -1 || max != 7 {
		t.Fatalf("MinMax = (%g,%g), want (-1,7)", min, max)
	}
	if _, _, err := MinMax(nil); err != ErrEmpty {
		t.Fatalf("MinMax(nil) err = %v, want ErrEmpty", err)
	}
}

// Property: Welford online moments agree with the batch formulas.
func TestMomentsMatchesBatch(t *testing.T) {
	f := func(raw []float64) bool {
		xs := sanitize(raw)
		if len(xs) < 2 {
			return true
		}
		var m Moments
		for _, x := range xs {
			m.Add(x)
		}
		return almostEqual(m.Mean(), Mean(xs), 1e-6*(1+math.Abs(Mean(xs)))) &&
			almostEqual(m.Variance(), Variance(xs), 1e-6*(1+Variance(xs)))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: merging two accumulators equals accumulating the concatenation.
func TestMomentsMergeEquivalence(t *testing.T) {
	f := func(rawA, rawB []float64) bool {
		a, b := sanitize(rawA), sanitize(rawB)
		var ma, mb, mAll Moments
		for _, x := range a {
			ma.Add(x)
			mAll.Add(x)
		}
		for _, x := range b {
			mb.Add(x)
			mAll.Add(x)
		}
		ma.Merge(mb)
		if ma.N() != mAll.N() {
			return false
		}
		if ma.N() == 0 {
			return true
		}
		return almostEqual(ma.Mean(), mAll.Mean(), 1e-6*(1+math.Abs(mAll.Mean()))) &&
			almostEqual(ma.Variance(), mAll.Variance(), 1e-5*(1+mAll.Variance()))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestMomentsMergeEmpty(t *testing.T) {
	var a, b Moments
	a.Add(1)
	a.Add(3)
	a.Merge(b) // merging empty must be a no-op
	if a.N() != 2 || a.Mean() != 2 {
		t.Fatalf("merge empty changed state: n=%d mean=%g", a.N(), a.Mean())
	}
	b.Merge(a) // merging into empty must copy
	if b.N() != 2 || b.Mean() != 2 {
		t.Fatalf("merge into empty: n=%d mean=%g", b.N(), b.Mean())
	}
}

// sanitize maps arbitrary quick-generated floats into a well-conditioned
// range so tolerance comparisons are meaningful.
func sanitize(raw []float64) []float64 {
	xs := make([]float64, 0, len(raw))
	for _, x := range raw {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			continue
		}
		xs = append(xs, math.Mod(x, 1e6))
	}
	return xs
}

func TestVarianceInvariantToShift(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	xs := make([]float64, 500)
	for i := range xs {
		xs[i] = rng.NormFloat64()
	}
	shifted := make([]float64, len(xs))
	for i, x := range xs {
		shifted[i] = x + 1000
	}
	if got, want := Variance(shifted), Variance(xs); !almostEqual(got, want, 1e-6) {
		t.Fatalf("variance not shift invariant: %g vs %g", got, want)
	}
}

func TestVarianceScalesQuadratically(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	xs := make([]float64, 300)
	for i := range xs {
		xs[i] = rng.Float64()
	}
	scaled := make([]float64, len(xs))
	for i, x := range xs {
		scaled[i] = 3 * x
	}
	if got, want := Variance(scaled), 9*Variance(xs); !almostEqual(got, want, 1e-9) {
		t.Fatalf("Var(3X) = %g, want %g", got, want)
	}
}
