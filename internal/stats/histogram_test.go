package stats

import (
	"strings"
	"testing"
)

func TestHistogramBinning(t *testing.T) {
	h, err := NewHistogram(0, 10, 10)
	if err != nil {
		t.Fatal(err)
	}
	h.Add(0.5)  // bin 0
	h.Add(9.99) // bin 9
	h.Add(5)    // bin 5
	if h.Counts[0] != 1 || h.Counts[9] != 1 || h.Counts[5] != 1 {
		t.Fatalf("counts = %v", h.Counts)
	}
	if h.Total() != 3 {
		t.Fatalf("total = %d, want 3", h.Total())
	}
}

func TestHistogramClampsOutOfRange(t *testing.T) {
	h, err := NewHistogram(0, 1, 4)
	if err != nil {
		t.Fatal(err)
	}
	h.Add(-5) // below range -> first bin
	h.Add(99) // above range -> last bin
	if h.Counts[0] != 1 || h.Counts[3] != 1 {
		t.Fatalf("out-of-range not clamped: %v", h.Counts)
	}
}

func TestHistogramErrors(t *testing.T) {
	if _, err := NewHistogram(0, 1, 0); err == nil {
		t.Fatal("expected error for zero bins")
	}
	if _, err := NewHistogram(1, 1, 5); err == nil {
		t.Fatal("expected error for empty range")
	}
	if _, err := NewHistogram(2, 1, 5); err == nil {
		t.Fatal("expected error for inverted range")
	}
}

func TestHistogramBinCenter(t *testing.T) {
	h, _ := NewHistogram(0, 10, 10)
	if got := h.BinCenter(0); got != 0.5 {
		t.Fatalf("BinCenter(0) = %g, want 0.5", got)
	}
	if got := h.BinCenter(9); got != 9.5 {
		t.Fatalf("BinCenter(9) = %g, want 9.5", got)
	}
}

func TestHistogramMode(t *testing.T) {
	h, _ := NewHistogram(0, 10, 10)
	for i := 0; i < 5; i++ {
		h.Add(7.2)
	}
	h.Add(1)
	if got := h.Mode(); got != 7.5 {
		t.Fatalf("Mode = %g, want 7.5", got)
	}
}

func TestHistogramFractionEmpty(t *testing.T) {
	h, _ := NewHistogram(0, 1, 2)
	if got := h.Fraction(0); got != 0 {
		t.Fatalf("Fraction on empty = %g, want 0", got)
	}
}

func TestHistogramString(t *testing.T) {
	h, _ := NewHistogram(0, 2, 2)
	h.Add(0.5)
	h.Add(1.5)
	h.Add(1.5)
	s := h.String()
	if !strings.Contains(s, "#") {
		t.Fatalf("String() missing bars:\n%s", s)
	}
	if lines := strings.Count(s, "\n"); lines != 2 {
		t.Fatalf("String() has %d lines, want 2:\n%s", lines, s)
	}
}
