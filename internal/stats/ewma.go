package stats

import "fmt"

// EWMA is the exponentially weighted moving average estimator the paper
// proposes in §V-G for online tracking of the model parameters (λ, E[S],
// E[S²/D]): on each new observation x the estimate θ is updated as
//
//	θ ← (1-α) θ + α x
//
// The smaller α, the slower the reaction to a change (the paper's analogy is
// TCP's smoothed round-trip time estimator).
type EWMA struct {
	alpha float64
	value float64
	n     int64
}

// NewEWMA returns an estimator with gain alpha in (0, 1].
func NewEWMA(alpha float64) (*EWMA, error) {
	if !(alpha > 0 && alpha <= 1) {
		return nil, fmt.Errorf("stats: EWMA gain must be in (0,1], got %g", alpha)
	}
	return &EWMA{alpha: alpha}, nil
}

// Add incorporates one observation. The first observation initialises the
// estimate directly so the estimator does not start biased toward zero.
func (e *EWMA) Add(x float64) {
	if e.n == 0 {
		e.value = x
	} else {
		e.value = (1-e.alpha)*e.value + e.alpha*x
	}
	e.n++
}

// Value returns the current estimate (0 before any observation).
func (e *EWMA) Value() float64 { return e.value }

// N returns the number of observations seen.
func (e *EWMA) N() int64 { return e.n }

// Alpha returns the estimator gain.
func (e *EWMA) Alpha() float64 { return e.alpha }
