package stats

import (
	"fmt"
	"strings"
)

// Histogram is a fixed-width-bin histogram over [Lo, Hi). Values below Lo go
// to the first bin and values at or above Hi to the last, so no observation
// is dropped (the paper's Figure 11 histogram of fitted b has a long tail
// that must be kept visible).
type Histogram struct {
	Lo, Hi float64
	Counts []int64
	total  int64
}

// NewHistogram returns a histogram with n equal-width bins on [lo, hi).
func NewHistogram(lo, hi float64, n int) (*Histogram, error) {
	if n <= 0 {
		return nil, fmt.Errorf("stats: histogram needs at least one bin, got %d", n)
	}
	if !(lo < hi) {
		return nil, fmt.Errorf("stats: histogram range [%g, %g) is empty", lo, hi)
	}
	return &Histogram{Lo: lo, Hi: hi, Counts: make([]int64, n)}, nil
}

// Add records one observation.
func (h *Histogram) Add(x float64) {
	i := int((x - h.Lo) / (h.Hi - h.Lo) * float64(len(h.Counts)))
	if i < 0 {
		i = 0
	}
	if i >= len(h.Counts) {
		i = len(h.Counts) - 1
	}
	h.Counts[i]++
	h.total++
}

// Total returns the number of observations recorded.
func (h *Histogram) Total() int64 { return h.total }

// BinCenter returns the midpoint of bin i.
func (h *Histogram) BinCenter(i int) float64 {
	w := (h.Hi - h.Lo) / float64(len(h.Counts))
	return h.Lo + (float64(i)+0.5)*w
}

// Fraction returns the fraction of observations in bin i (0 if empty).
func (h *Histogram) Fraction(i int) float64 {
	if h.total == 0 {
		return 0
	}
	return float64(h.Counts[i]) / float64(h.total)
}

// Mode returns the center of the most populated bin.
func (h *Histogram) Mode() float64 {
	best := 0
	for i, c := range h.Counts {
		if c > h.Counts[best] {
			best = i
		}
	}
	return h.BinCenter(best)
}

// String renders the histogram as an ASCII bar chart, one bin per line, for
// the experiment harness output.
func (h *Histogram) String() string {
	var b strings.Builder
	var max int64 = 1
	for _, c := range h.Counts {
		if c > max {
			max = c
		}
	}
	const width = 50
	for i, c := range h.Counts {
		bar := int(float64(c) / float64(max) * width)
		fmt.Fprintf(&b, "%8.3f | %-*s %d (%.1f%%)\n",
			h.BinCenter(i), width, strings.Repeat("#", bar), c, 100*h.Fraction(i))
	}
	return b.String()
}
