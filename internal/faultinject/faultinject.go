// Package faultinject is the chaos harness of the streaming pipeline: it
// wraps block-stream callbacks and memory budgets with deterministic,
// seed-driven faults — injected errors, block truncation, delays, and
// allocation failures — so the robustness tests can drive the real
// unwinding paths (cancellation, panic recovery, load shedding) on demand
// instead of waiting for production to find them.
//
// Determinism contract: an Injector is a pure function of (Config, stage
// names, call order). Each wrapped stage draws from its own rng sub-stream
// derived from the seed and the stage name, so two runs with the same
// configuration inject byte-identical fault sequences — a failing chaos run
// replays exactly. The zero-config Injector injects nothing and is safe to
// leave wired in: every probability is zero and ErrAfter is off.
package faultinject

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/dist/rng"
	"repro/internal/membudget"
	"repro/internal/trace"
)

// ErrInjected is the sentinel wrapped by every injected failure; chaos
// tests assert errors.Is(err, ErrInjected) to distinguish harness faults
// from genuine pipeline bugs.
var ErrInjected = errors.New("faultinject: injected fault")

// Config selects which faults an Injector deals and how often. The zero
// value injects nothing.
type Config struct {
	// Seed drives every per-stage fault stream; same seed, same faults.
	Seed int64
	// ErrAfter > 0 fails a stage's Nth block call (1-based, counted per
	// stage) with a wrapped ErrInjected — the deterministic "die at block
	// N" knob.
	ErrAfter int64
	// ErrProb is the per-call probability of failing with ErrInjected.
	ErrProb float64
	// TruncProb is the per-call probability of truncating the block to a
	// prefix (at least one record is kept when the block is non-empty, so
	// truncation corrupts coverage, not stream invariants).
	TruncProb float64
	// DelayProb is the per-call probability of sleeping Delay before the
	// call — the scheduler-jitter knob that shakes out ordering assumptions.
	DelayProb float64
	// Delay is the sleep applied on a delay fault.
	Delay time.Duration
}

// Stats counts the faults an Injector dealt, readable while a chaos run is
// still in flight.
type Stats struct {
	Blocks        int64 // wrapped block calls observed
	Errors        int64 // injected errors
	Truncations   int64 // truncated blocks
	Delays        int64 // injected delays
	AllocFailures int64 // injected budget-reservation failures
}

// Injector wraps pipeline stages with the configured faults. Safe for
// concurrent use: stages draw from independent rng streams behind a lock
// each (stage wrappers are called from the pipeline's worker goroutines).
type Injector struct {
	cfg Config

	blocks        atomic.Int64
	errors        atomic.Int64
	truncations   atomic.Int64
	delays        atomic.Int64
	allocFailures atomic.Int64
}

// New returns an injector dealing cfg's faults. Probabilities must lie in
// [0, 1] and a positive DelayProb needs a positive Delay.
func New(cfg Config) (*Injector, error) {
	for _, p := range []struct {
		name string
		v    float64
	}{{"ErrProb", cfg.ErrProb}, {"TruncProb", cfg.TruncProb}, {"DelayProb", cfg.DelayProb}} {
		if p.v < 0 || p.v > 1 {
			return nil, fmt.Errorf("faultinject: %s must be in [0, 1], got %g", p.name, p.v)
		}
	}
	if cfg.DelayProb > 0 && cfg.Delay <= 0 {
		return nil, fmt.Errorf("faultinject: DelayProb %g needs a positive Delay", cfg.DelayProb)
	}
	if cfg.ErrAfter < 0 {
		return nil, fmt.Errorf("faultinject: ErrAfter must be >= 0, got %d", cfg.ErrAfter)
	}
	return &Injector{cfg: cfg}, nil
}

// Stats returns a snapshot of the faults dealt so far.
func (in *Injector) Stats() Stats {
	if in == nil {
		return Stats{}
	}
	return Stats{
		Blocks:        in.blocks.Load(),
		Errors:        in.errors.Load(),
		Truncations:   in.truncations.Load(),
		Delays:        in.delays.Load(),
		AllocFailures: in.allocFailures.Load(),
	}
}

// hashStage folds a stage name into the rng stream id so each stage gets
// its own deterministic fault sequence (FNV-1a, kept inline to avoid the
// hash interface allocation).
func hashStage(name string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(name); i++ {
		h ^= uint64(name[i])
		h *= 1099511628211
	}
	return h
}

// WrapBlockFn interposes the injector on one block-stream callback. The
// returned function deals the configured faults in a fixed order — delay,
// deterministic ErrAfter, probabilistic error, truncation — then forwards
// to fn. A nil injector (or a zero config) returns fn untouched, so wiring
// the hook costs nothing when chaos is off.
//
// Delay faults sleep uninterruptibly; a stage that must stay responsive to
// cancellation during injected delays (a daemon draining on SIGTERM) should
// use WrapBlockFnCtx instead.
func (in *Injector) WrapBlockFn(stage string, fn func(*trace.Block) error) func(*trace.Block) error {
	return in.WrapBlockFnCtx(context.Background(), stage, fn)
}

// WrapBlockFnCtx is WrapBlockFn with context-aware delay faults: a sleeping
// faulted stage wakes on ctx cancellation and returns the context's error
// immediately, so an injected delay can never stall a shutdown past its
// drain deadline. The fault *sequence* is identical to WrapBlockFn — the
// context only bounds how long a dealt delay is actually served.
func (in *Injector) WrapBlockFnCtx(ctx context.Context, stage string, fn func(*trace.Block) error) func(*trace.Block) error {
	if in == nil {
		return fn
	}
	cfg := in.cfg
	if cfg.ErrAfter == 0 && cfg.ErrProb == 0 && cfg.TruncProb == 0 && cfg.DelayProb == 0 {
		return fn
	}
	var mu sync.Mutex
	r := rng.NewStream(cfg.Seed, hashStage(stage))
	var calls int64
	return func(blk *trace.Block) error {
		mu.Lock()
		calls++
		n := calls
		var dErr, dTrunc, dDelay float64
		if cfg.ErrProb > 0 || cfg.TruncProb > 0 || cfg.DelayProb > 0 {
			// Three draws per call regardless of which faults are armed, so
			// enabling one fault never shifts another's sequence.
			dDelay = r.Float64()
			dErr = r.Float64()
			dTrunc = r.Float64()
		}
		mu.Unlock()
		in.blocks.Add(1)
		if cfg.DelayProb > 0 && dDelay < cfg.DelayProb {
			in.delays.Add(1)
			if err := sleepCtx(ctx, cfg.Delay); err != nil {
				return fmt.Errorf("faultinject: stage %q delay interrupted: %w", stage, err)
			}
		}
		if cfg.ErrAfter > 0 && n >= cfg.ErrAfter {
			in.errors.Add(1)
			return fmt.Errorf("faultinject: stage %q failed at block %d: %w", stage, n, ErrInjected)
		}
		if cfg.ErrProb > 0 && dErr < cfg.ErrProb {
			in.errors.Add(1)
			return fmt.Errorf("faultinject: stage %q random failure at block %d: %w", stage, n, ErrInjected)
		}
		if cfg.TruncProb > 0 && dTrunc < cfg.TruncProb {
			if blk.Len() > 1 {
				in.truncations.Add(1)
				*blk = blk.Slice(0, 1+int(uint64(n)%uint64(blk.Len()-1)))
			}
		}
		return fn(blk)
	}
}

// sleepCtx sleeps d or until ctx is cancelled, whichever comes first,
// returning the context's error on interruption. The context.Background
// fast path (WrapBlockFn) keeps plain time.Sleep: no timer allocation.
func sleepCtx(ctx context.Context, d time.Duration) error {
	if ctx.Done() == nil {
		time.Sleep(d)
		return nil
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// budgetFaulter interposes allocation failures on a memory budget.
type budgetFaulter struct {
	in        *Injector
	inner     membudget.Reserver
	failAfter int64
	calls     atomic.Int64
}

// WrapBudget returns a Reserver that forwards to inner but fails every
// reservation from the failAfter-th on (1-based) with a wrapped
// ErrInjected — the "allocator starts refusing" fault. TryReserve failures
// are reported as shed pressure (false), matching how a genuinely
// exhausted budget presents. failAfter <= 0 disables the fault.
func (in *Injector) WrapBudget(inner membudget.Reserver, failAfter int64) membudget.Reserver {
	return &budgetFaulter{in: in, inner: inner, failAfter: failAfter}
}

func (b *budgetFaulter) fault() bool {
	if b.failAfter <= 0 {
		return false
	}
	if b.calls.Add(1) < b.failAfter {
		return false
	}
	b.in.allocFailures.Add(1)
	return true
}

func (b *budgetFaulter) Reserve(ctx context.Context, n int64) error {
	if b.fault() {
		return fmt.Errorf("faultinject: budget reservation of %d bytes refused: %w", n, ErrInjected)
	}
	if b.inner == nil {
		return nil
	}
	return b.inner.Reserve(ctx, n)
}

func (b *budgetFaulter) TryReserve(n int64) bool {
	if b.fault() {
		return false
	}
	if b.inner == nil {
		return true
	}
	return b.inner.TryReserve(n)
}

func (b *budgetFaulter) Release(n int64) {
	if b.inner != nil {
		b.inner.Release(n)
	}
}
