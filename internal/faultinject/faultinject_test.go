package faultinject

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/membudget"
	"repro/internal/trace"
)

func block(n int) *trace.Block {
	b := &trace.Block{}
	for i := 0; i < n; i++ {
		b.Append(float64(i), 1, uint64(i), uint64(i))
	}
	return b
}

func TestConfigValidation(t *testing.T) {
	for _, cfg := range []Config{
		{ErrProb: -0.1},
		{ErrProb: 1.1},
		{TruncProb: 2},
		{DelayProb: -1},
		{DelayProb: 0.5}, // no Delay
		{ErrAfter: -1},
	} {
		if _, err := New(cfg); err == nil {
			t.Fatalf("New(%+v) succeeded, want error", cfg)
		}
	}
	if _, err := New(Config{}); err != nil {
		t.Fatalf("zero config rejected: %v", err)
	}
}

func TestNilAndZeroInjectorPassThrough(t *testing.T) {
	called := 0
	fn := func(*trace.Block) error { called++; return nil }
	var nilIn *Injector
	if got := nilIn.WrapBlockFn("s", fn); got == nil {
		t.Fatal("nil injector returned nil fn")
	} else if err := got(block(1)); err != nil || called != 1 {
		t.Fatalf("nil injector wrapper: err %v, called %d", err, called)
	}
	in, err := New(Config{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	wrapped := in.WrapBlockFn("s", fn)
	if err := wrapped(block(1)); err != nil || called != 2 {
		t.Fatalf("zero-config wrapper: err %v, called %d", err, called)
	}
	if s := in.Stats(); s != (Stats{}) {
		t.Fatalf("zero-config injector recorded stats %+v", s)
	}
}

func TestErrAfterFailsDeterministically(t *testing.T) {
	in, err := New(Config{Seed: 7, ErrAfter: 3})
	if err != nil {
		t.Fatal(err)
	}
	var seen []int
	fn := in.WrapBlockFn("gen", func(b *trace.Block) error {
		seen = append(seen, b.Len())
		return nil
	})
	for i := 1; i <= 5; i++ {
		err := fn(block(i))
		if i < 3 && err != nil {
			t.Fatalf("call %d failed early: %v", i, err)
		}
		if i >= 3 {
			if err == nil {
				t.Fatalf("call %d did not fail", i)
			}
			if !errors.Is(err, ErrInjected) {
				t.Fatalf("call %d error %v does not wrap ErrInjected", i, err)
			}
		}
	}
	if len(seen) != 2 {
		t.Fatalf("inner fn saw %d calls, want 2", len(seen))
	}
	if s := in.Stats(); s.Errors != 3 || s.Blocks != 5 {
		t.Fatalf("Stats = %+v, want 3 errors over 5 blocks", s)
	}
}

// Same (seed, stage, call order) must deal the identical fault sequence;
// a different stage name must deal an independent one.
func TestFaultSequenceDeterministicPerStage(t *testing.T) {
	run := func(stage string) []string {
		in, err := New(Config{Seed: 42, ErrProb: 0.3, TruncProb: 0.3})
		if err != nil {
			t.Fatal(err)
		}
		fn := in.WrapBlockFn(stage, func(*trace.Block) error { return nil })
		var out []string
		for i := 0; i < 64; i++ {
			b := block(10)
			err := fn(b)
			switch {
			case err != nil:
				out = append(out, "E")
			case b.Len() < 10:
				out = append(out, "T")
			default:
				out = append(out, ".")
			}
		}
		return out
	}
	a1, a2, b1 := run("alpha"), run("alpha"), run("beta")
	for i := range a1 {
		if a1[i] != a2[i] {
			t.Fatalf("call %d: fault %q vs %q on identical runs", i, a1[i], a2[i])
		}
	}
	same := true
	for i := range a1 {
		if a1[i] != b1[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("stages alpha and beta drew identical fault sequences")
	}
	// Sanity: with p=0.3 each over 64 calls, both fault kinds must appear.
	var errs, truncs int
	for _, s := range a1 {
		switch s {
		case "E":
			errs++
		case "T":
			truncs++
		}
	}
	if errs == 0 || truncs == 0 {
		t.Fatalf("fault mix degenerate: %d errors, %d truncations", errs, truncs)
	}
}

func TestTruncationKeepsNonEmptyPrefix(t *testing.T) {
	in, err := New(Config{Seed: 3, TruncProb: 1})
	if err != nil {
		t.Fatal(err)
	}
	fn := in.WrapBlockFn("s", func(*trace.Block) error { return nil })
	for i := 0; i < 32; i++ {
		b := block(8)
		want := append([]float64(nil), b.Times...)
		if err := fn(b); err != nil {
			t.Fatal(err)
		}
		if b.Len() < 1 || b.Len() > 8 {
			t.Fatalf("truncated block has %d records", b.Len())
		}
		for j := 0; j < b.Len(); j++ {
			if b.Times[j] != want[j] {
				t.Fatalf("truncation reordered records: %v vs prefix of %v", b.Times, want)
			}
		}
	}
	// Single-record blocks are never truncated to empty.
	b := block(1)
	if err := fn(b); err != nil {
		t.Fatal(err)
	}
	if b.Len() != 1 {
		t.Fatalf("single-record block truncated to %d", b.Len())
	}
}

func TestDelayFaultSleeps(t *testing.T) {
	in, err := New(Config{Seed: 5, DelayProb: 1, Delay: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	fn := in.WrapBlockFn("s", func(*trace.Block) error { return nil })
	start := time.Now()
	for i := 0; i < 5; i++ {
		if err := fn(block(1)); err != nil {
			t.Fatal(err)
		}
	}
	if elapsed := time.Since(start); elapsed < 5*time.Millisecond {
		t.Fatalf("5 delay faults took %v, want >= 5ms", elapsed)
	}
	if s := in.Stats(); s.Delays != 5 {
		t.Fatalf("Delays = %d, want 5", s.Delays)
	}
}

func TestWrapBudgetFailsAfterN(t *testing.T) {
	in, err := New(Config{Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	inner, err := membudget.New(1 << 20)
	if err != nil {
		t.Fatal(err)
	}
	r := in.WrapBudget(inner, 3)
	ctx := context.Background()
	for i := 1; i <= 2; i++ {
		if err := r.Reserve(ctx, 100); err != nil {
			t.Fatalf("reservation %d failed early: %v", i, err)
		}
	}
	err = r.Reserve(ctx, 100)
	if err == nil || !errors.Is(err, ErrInjected) {
		t.Fatalf("3rd reservation: err %v, want wrapped ErrInjected", err)
	}
	if r.TryReserve(100) {
		t.Fatal("TryReserve succeeded after the fault point")
	}
	// Releases still forward so the books stay balanced.
	r.Release(100)
	r.Release(100)
	if got := inner.Used(); got != 0 {
		t.Fatalf("inner budget holds %d bytes after releases", got)
	}
	if s := in.Stats(); s.AllocFailures != 2 {
		t.Fatalf("AllocFailures = %d, want 2", s.AllocFailures)
	}
	// failAfter <= 0 never faults, nil inner always admits.
	free := in.WrapBudget(nil, 0)
	if err := free.Reserve(ctx, 1<<40); err != nil {
		t.Fatal(err)
	}
	if !free.TryReserve(1 << 40) {
		t.Fatal("pass-through TryReserve failed")
	}
}

// TestDelayRespectsContext pins the satellite contract: a sleeping faulted
// stage must wake on cancellation instead of stalling a drain deadline.
func TestDelayRespectsContext(t *testing.T) {
	in, err := New(Config{Seed: 1, DelayProb: 1, Delay: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	fn := in.WrapBlockFnCtx(ctx, "ingest", func(*trace.Block) error { return nil })
	done := make(chan error, 1)
	start := time.Now()
	go func() { done <- fn(block(3)) }()
	time.Sleep(10 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("interrupted delay returned %v, want wrapped context.Canceled", err)
		}
		if elapsed := time.Since(start); elapsed > 10*time.Second {
			t.Fatalf("stage stalled %v past cancellation", elapsed)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("faulted stage never woke after cancellation")
	}
	if s := in.Stats(); s.Delays != 1 {
		t.Fatalf("Delays = %d, want 1", s.Delays)
	}
}

// TestWrapBlockFnCtxSameFaultSequence asserts the ctx-aware wrapper deals
// the identical fault sequence as the background one.
func TestWrapBlockFnCtxSameFaultSequence(t *testing.T) {
	cfg := Config{Seed: 42, ErrProb: 0.3, TruncProb: 0.3}
	runSeq := func(wrap func(*Injector) func(*trace.Block) error) []int {
		in, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		fn := wrap(in)
		var lens []int
		for i := 0; i < 50; i++ {
			blk := block(8)
			if err := fn(blk); err != nil {
				lens = append(lens, -1)
			} else {
				lens = append(lens, blk.Len())
			}
		}
		return lens
	}
	plain := runSeq(func(in *Injector) func(*trace.Block) error {
		return in.WrapBlockFn("s", func(*trace.Block) error { return nil })
	})
	ctxed := runSeq(func(in *Injector) func(*trace.Block) error {
		return in.WrapBlockFnCtx(context.Background(), "s", func(*trace.Block) error { return nil })
	})
	for i := range plain {
		if plain[i] != ctxed[i] {
			t.Fatalf("fault sequences diverge at call %d: %v vs %v", i, plain, ctxed)
		}
	}
}
