package gen

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/stats"
	"repro/internal/timeseries"
)

// testPopulation draws a reproducible flow population in bits/seconds.
func testPopulation(n int, seed int64) []core.FlowSample {
	rng := rand.New(rand.NewSource(seed))
	out := make([]core.FlowSample, n)
	for i := range out {
		s := 5e4 * math.Exp(rng.NormFloat64())
		r := 5e4 * math.Exp(0.4*rng.NormFloat64())
		out[i] = core.FlowSample{S: s, D: s / r}
	}
	return out
}

func testModel(t *testing.T, shot core.Shot, lambda float64) *core.Model {
	t.Helper()
	m, err := core.NewModel(lambda, shot, testPopulation(3000, 1))
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestConfigValidation(t *testing.T) {
	pop := testPopulation(10, 2)
	bad := []Config{
		{},
		{Lambda: 1},
		{Lambda: 1, Shot: core.Triangular},
		{Lambda: 1, Shot: core.Triangular, Flows: pop},
		{Lambda: 1, Shot: core.Triangular, Flows: pop, Duration: 10, Warmup: -1},
	}
	for i, cfg := range bad {
		if _, err := FluidSeries(cfg, 0.1); err == nil {
			t.Fatalf("config %d should be rejected", i)
		}
	}
	good := Config{Lambda: 1, Shot: core.Triangular, Flows: pop, Duration: 10}
	if _, err := FluidSeries(good, 0); err == nil {
		t.Fatal("zero delta should be rejected")
	}
	if _, err := FluidSeries(good, 100); err == nil {
		t.Fatal("delta > duration should be rejected")
	}
	if _, err := Packets(good, 10); err == nil {
		t.Fatal("tiny pktBytes should be rejected")
	}
	fs, err := core.NewFuncShot("flat", func(u float64) float64 { return 1 })
	if err != nil {
		t.Fatal(err)
	}
	good.Shot = fs
	if _, err := Packets(good, 1500); err == nil {
		t.Fatal("non-power shot for packets should be rejected")
	}
}

// The generated fluid traffic must reproduce the model's first two moments
// — this is the validation loop of §VII-C.
func TestFluidSeriesMatchesModelMoments(t *testing.T) {
	for _, shot := range []core.Shot{core.Rectangular, core.Parabolic} {
		m := testModel(t, shot, 120)
		cfg := FromModel(m, 400, 30, 9)
		series, err := FluidSeries(cfg, 0.1)
		if err != nil {
			t.Fatal(err)
		}
		if got, want := series.Mean(), m.Mean(); math.Abs(got-want)/want > 0.05 {
			t.Fatalf("%s: generated mean %g vs model %g", shot.Name(), got, want)
		}
		// Compare against the Δ-averaged model variance (eq. 7); Δ=100 ms
		// of averaging matters little for seconds-long flows.
		wantVar, err := m.AveragedVariance(0.1)
		if err != nil {
			t.Fatal(err)
		}
		if got := series.Variance(); math.Abs(got-wantVar)/wantVar > 0.25 {
			t.Fatalf("%s: generated variance %g vs model %g", shot.Name(), got, wantVar)
		}
	}
}

// Rectangular generation under-estimates the variance of parabolic traffic:
// the paper's argument for adding the shot to traffic generators.
func TestShotShapeCarriesVariance(t *testing.T) {
	pop := testPopulation(3000, 3)
	base := Config{Lambda: 120, Flows: pop, Duration: 300, Warmup: 30, Seed: 4}
	rectCfg, parCfg := base, base
	rectCfg.Shot = core.Rectangular
	parCfg.Shot = core.Parabolic
	rect, err := FluidSeries(rectCfg, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	par, err := FluidSeries(parCfg, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	// Same arrivals and flows (same seed), different pacing.
	if math.Abs(rect.Mean()-par.Mean())/par.Mean() > 0.02 {
		t.Fatalf("means should match: %g vs %g", rect.Mean(), par.Mean())
	}
	if !(rect.Variance() < par.Variance()) {
		t.Fatalf("rectangular variance %g should be below parabolic %g",
			rect.Variance(), par.Variance())
	}
}

func TestFluidSeriesBitConservation(t *testing.T) {
	// Without warm-up and with flows fully inside the window, total bits
	// in the series equal the sum of arrived flow sizes.
	pop := []core.FlowSample{{S: 1e5, D: 0.5}}
	cfg := Config{Lambda: 5, Shot: core.Triangular, Flows: pop, Duration: 100, Seed: 5}
	series, err := FluidSeries(cfg, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	total := stats.Sum(series.Rate) * series.Delta
	// Total should be ≈ (number of arrivals)·1e5; arrivals ≈ 5·100 = 500,
	// minus boundary truncation of at most a flow or two.
	n := total / 1e5
	if n < 400 || n > 600 {
		t.Fatalf("conserved flows = %g, want ≈ 500", n)
	}
	// At most one flow straddles the end boundary (D = 0.5 s), so the
	// volume deviates from an integral flow count by less than one flow.
	if frac := n - math.Floor(n); frac != 0 && math.Ceil(n)*1e5-total > 1e5 {
		t.Fatalf("more than one flow's worth of truncation: total %g", total)
	}
}

func TestPacketsMatchFluid(t *testing.T) {
	m := testModel(t, core.Triangular, 80)
	cfg := FromModel(m, 200, 20, 6)
	recs, err := Packets(cfg, 500)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) == 0 {
		t.Fatal("no packets generated")
	}
	// Time-ordered, inside the window.
	prev := -1.0
	for i, r := range recs {
		if r.Time < prev {
			t.Fatalf("packet %d out of order", i)
		}
		if r.Time < 0 || r.Time >= cfg.Duration {
			t.Fatalf("packet %d outside window: %g", i, r.Time)
		}
		prev = r.Time
	}
	// The packetised rate matches the fluid rate to within packetisation
	// noise: same arrivals (same seed) so bin series correlate strongly.
	series, err := timeseries.Bin(recs, cfg.Duration, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	fluid, err := FluidSeries(cfg, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(series.Mean()-fluid.Mean())/fluid.Mean() > 0.05 {
		t.Fatalf("packet mean %g vs fluid %g", series.Mean(), fluid.Mean())
	}
	if corr := stats.CrossCorrelation(series.Rate, fluid.Rate); corr < 0.9 {
		t.Fatalf("packet/fluid correlation = %g, want > 0.9", corr)
	}
}

func TestPacketsDeterministic(t *testing.T) {
	m := testModel(t, core.Rectangular, 30)
	cfg := FromModel(m, 50, 0, 7)
	a, err := Packets(cfg, 1500)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Packets(cfg, 1500)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("record %d differs", i)
		}
	}
}

func TestWarmupMakesStartStationary(t *testing.T) {
	// Without warm-up the first bins under-shoot the mean; with warm-up
	// they match it.
	m := testModel(t, core.Rectangular, 150)
	cold := FromModel(m, 120, 0, 8)
	warm := FromModel(m, 120, 30, 8)
	coldS, err := FluidSeries(cold, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	warmS, err := FluidSeries(warm, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	head := func(s timeseries.Series) float64 { return stats.Mean(s.Rate[:20]) }
	if !(head(coldS) < head(warmS)) {
		t.Fatalf("cold start head %g should undershoot warm head %g",
			head(coldS), head(warmS))
	}
	if math.Abs(head(warmS)-m.Mean())/m.Mean() > 0.25 {
		t.Fatalf("warm head %g far from model mean %g", head(warmS), m.Mean())
	}
}
