// Package gen implements the paper's §VII-C application: generation of
// synthetic backbone traffic from a fitted shot-noise model, for use in
// simulation tools. Flows arrive as a Poisson process at the model's λ;
// each flow bootstraps its (S, D) pair from the model's empirical flow
// population and transmits with the model's shot. Both a fluid rate series
// (exact bin integrals of the shots) and a packet stream are produced.
//
// The paper's key point is that naive generation at a constant rate S/D
// (rectangular shots) reproduces the mean but under-estimates the traffic's
// variance; the shot component is what carries the second-order structure.
package gen

import (
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/dist/rng"
	"repro/internal/netpkt"
	"repro/internal/timeseries"
	"repro/internal/trace"
)

// Config parameterises the generator.
type Config struct {
	// Lambda is the flow arrival rate (flows/s).
	Lambda float64
	// Shot is the flow rate function to transmit with.
	Shot core.Shot
	// Flows is the empirical (S, D) population to bootstrap from.
	Flows []core.FlowSample
	// Duration of the generated window in seconds.
	Duration float64
	// Warmup runs the arrival process this long before the window so the
	// generated process is stationary from the first sample. Default: the
	// 99th-percentile flow duration is a good choice; 0 disables it.
	Warmup float64
	// Seed drives all randomness.
	Seed int64
}

// FromModel builds a Config from a fitted model.
func FromModel(m *core.Model, duration, warmup float64, seed int64) Config {
	return Config{
		Lambda:   m.Lambda,
		Shot:     m.Shot,
		Flows:    m.Flows,
		Duration: duration,
		Warmup:   warmup,
		Seed:     seed,
	}
}

func (c *Config) validate() error {
	if !(c.Lambda > 0) {
		return fmt.Errorf("gen: Lambda must be > 0, got %g", c.Lambda)
	}
	if c.Shot == nil {
		return fmt.Errorf("gen: nil Shot")
	}
	if len(c.Flows) == 0 {
		return fmt.Errorf("gen: empty flow population")
	}
	if !(c.Duration > 0) {
		return fmt.Errorf("gen: Duration must be > 0, got %g", c.Duration)
	}
	if c.Warmup < 0 {
		return fmt.Errorf("gen: Warmup must be >= 0, got %g", c.Warmup)
	}
	return nil
}

// FluidSeries generates the exact fluid rate process sampled over bins of
// length delta: each flow's shot is integrated bin-by-bin through the
// cumulative transmission curve, so no packetisation noise enters. This is
// the reference signal for validating the generator against the model's
// moments.
func FluidSeries(cfg Config, delta float64) (timeseries.Series, error) {
	if err := cfg.validate(); err != nil {
		return timeseries.Series{}, err
	}
	if !(delta > 0) || delta > cfg.Duration {
		return timeseries.Series{}, fmt.Errorf("gen: need 0 < delta <= duration")
	}
	r := rng.New(cfg.Seed)
	pp, err := dist.NewPoissonProcess(cfg.Lambda, r)
	if err != nil {
		return timeseries.Series{}, fmt.Errorf("gen: %w", err)
	}
	n := int(cfg.Duration / delta)
	bits := make([]float64, n)
	horizon := cfg.Warmup + cfg.Duration
	for {
		t := pp.Next()
		if t >= horizon {
			break
		}
		fs := cfg.Flows[r.Intn(len(cfg.Flows))]
		start := t - cfg.Warmup // window-relative arrival
		end := start + fs.D
		if end <= 0 {
			continue
		}
		lo := int(math.Floor(start / delta))
		if lo < 0 {
			lo = 0
		}
		hi := int(math.Ceil(end / delta))
		if hi > n {
			hi = n
		}
		prev := cfg.Shot.Cumulative(fs.S, fs.D, float64(lo)*delta-start)
		for k := lo; k < hi; k++ {
			cum := cfg.Shot.Cumulative(fs.S, fs.D, float64(k+1)*delta-start)
			bits[k] += cum - prev
			prev = cum
		}
	}
	for k := range bits {
		bits[k] /= delta
	}
	return timeseries.Series{Delta: delta, Rate: bits}, nil
}

// Packets generates a packet-level trace: flow arrivals and (S, D) as in
// FluidSeries, with each flow's bytes chopped into pktBytes-sized packets
// paced on the shot's inverse cumulative curve. The shot must be a
// core.PowerShot (the family §V-D fits); general shots would need numeric
// inversion. Records are returned in timestamp order.
//
// Generation rides the trace package's shared program player: each arrival
// becomes a compact trace.FlowProgram pulled on demand, and the player
// emits packets in (time, flow admission) order directly — no trace-length
// event buffer and no final sort; working memory is O(concurrently active
// flows). Warm-up flows fast-forward to their first in-window packet in
// O(1) instead of generating-and-discarding their early packets.
func Packets(cfg Config, pktBytes int) ([]trace.Record, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	ps, ok := cfg.Shot.(core.PowerShot)
	if !ok {
		return nil, fmt.Errorf("gen: packet generation requires a PowerShot, got %T", cfg.Shot)
	}
	if pktBytes < 40 {
		return nil, fmt.Errorf("gen: pktBytes must be >= 40, got %d", pktBytes)
	}
	r := rng.New(cfg.Seed)
	pp, err := dist.NewPoissonProcess(cfg.Lambda, r)
	if err != nil {
		return nil, fmt.Errorf("gen: %w", err)
	}
	horizon := cfg.Warmup + cfg.Duration
	invBp1 := 1 / (ps.B + 1)
	var flowID uint32
	// next draws arrivals lazily in Start order (a plain Poisson process, so
	// arrival order is Start order — the player feed's one requirement).
	next := func() (trace.FlowProgram, bool) {
		for {
			t := pp.Next()
			if t >= horizon {
				return trace.FlowProgram{}, false
			}
			fs := cfg.Flows[r.Intn(len(cfg.Flows))]
			if (t-cfg.Warmup)+fs.D <= 0 {
				continue // entirely inside the warm-up
			}
			flowID++
			sizeBytes := int(fs.S / 8)
			if sizeBytes < 40 {
				sizeBytes = 40
			}
			return trace.FlowProgram{
				Index:    flowID,
				Start:    t,
				Duration: fs.D,
				SizeB:    sizeBytes,
				InvBp1:   invBp1,
				PktBytes: pktBytes,
				Hdr:      synthHeader(flowID),
			}, true
		}
	}
	est := int(cfg.Lambda * cfg.Duration * 8)
	if est < 0 || est > 1<<22 {
		est = 1 << 22
	}
	recs := make([]trace.Record, 0, est)
	trace.PlayPrograms(cfg.Warmup, horizon, est, next, func(rec trace.Record) bool {
		recs = append(recs, rec)
		return true
	})
	return recs, nil
}

// synthHeader builds a distinct 5-tuple per generated flow.
func synthHeader(id uint32) netpkt.Header {
	return netpkt.Header{
		SrcIP:    netpkt.AddrFromUint32(0x0A00_0000 | (id*2654435761)>>8),
		DstIP:    netpkt.AddrFromUint32(0xAC10_0000 | (id % 65536 << 8) | (id%253 + 1)),
		Protocol: netpkt.ProtoTCP,
		SrcPort:  uint16(1024 + id%60000),
		DstPort:  443,
		TTL:      64,
	}
}
