package membudget

import (
	"context"
	"sync"
	"testing"
	"time"
)

func TestNewRejectsNonPositiveLimit(t *testing.T) {
	for _, limit := range []int64{0, -1, -1 << 40} {
		if _, err := New(limit); err == nil {
			t.Fatalf("New(%d) succeeded, want error", limit)
		}
	}
}

func TestReserveReleaseAccounting(t *testing.T) {
	b, err := New(100)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	if err := b.Reserve(ctx, 60); err != nil {
		t.Fatal(err)
	}
	if got := b.Used(); got != 60 {
		t.Fatalf("Used = %d, want 60", got)
	}
	if !b.TryReserve(40) {
		t.Fatal("TryReserve(40) failed with 40 bytes free")
	}
	if b.TryReserve(1) {
		t.Fatal("TryReserve(1) succeeded over the limit")
	}
	if got := b.Denied(); got != 1 {
		t.Fatalf("Denied = %d, want 1", got)
	}
	b.Release(40)
	b.Release(60)
	if got := b.Used(); got != 0 {
		t.Fatalf("Used after releases = %d, want 0", got)
	}
	if got := b.Peak(); got != 100 {
		t.Fatalf("Peak = %d, want 100", got)
	}
}

// A reservation larger than the whole budget is clamped to the limit, so it
// can still proceed once the budget drains (and its release stays balanced)
// instead of deadlocking forever.
func TestOversizedReservationClamps(t *testing.T) {
	b, err := New(10)
	if err != nil {
		t.Fatal(err)
	}
	if err := b.Reserve(context.Background(), 1000); err != nil {
		t.Fatal(err)
	}
	if got := b.Used(); got != 10 {
		t.Fatalf("Used = %d, want clamped 10", got)
	}
	b.Release(1000)
	if got := b.Used(); got != 0 {
		t.Fatalf("Used after release = %d, want 0", got)
	}
}

func TestReserveBlocksUntilRelease(t *testing.T) {
	b, err := New(10)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	if err := b.Reserve(ctx, 10); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		done <- b.Reserve(ctx, 5)
	}()
	select {
	case err := <-done:
		t.Fatalf("Reserve returned %v before any release", err)
	case <-time.After(20 * time.Millisecond):
	}
	b.Release(10)
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("Reserve after release: %v", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Reserve still blocked after release")
	}
	if b.Waits() != 1 {
		t.Fatalf("Waits = %d, want 1", b.Waits())
	}
}

func TestReserveHonorsContextCancellation(t *testing.T) {
	b, err := New(10)
	if err != nil {
		t.Fatal(err)
	}
	if err := b.Reserve(context.Background(), 10); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		done <- b.Reserve(ctx, 1)
	}()
	cancel()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("Reserve succeeded after cancellation with a full budget")
		}
		if ctx.Err() == nil || !errorsIs(err, ctx.Err()) {
			t.Fatalf("Reserve error %v does not wrap %v", err, ctx.Err())
		}
	case <-time.After(2 * time.Second):
		t.Fatal("cancelled Reserve never returned")
	}
}

// errorsIs avoids importing errors just for one assertion helper signature.
func errorsIs(err, target error) bool {
	for err != nil {
		if err == target {
			return true
		}
		u, ok := err.(interface{ Unwrap() error })
		if !ok {
			return false
		}
		err = u.Unwrap()
	}
	return false
}

func TestOverReleasePanics(t *testing.T) {
	b, err := New(10)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Release of unreserved bytes did not panic")
		}
	}()
	b.Release(5)
}

func TestNilBudgetIsNoOp(t *testing.T) {
	var b *Budget
	if err := b.Reserve(context.Background(), 1<<40); err != nil {
		t.Fatal(err)
	}
	if !b.TryReserve(1 << 40) {
		t.Fatal("nil TryReserve failed")
	}
	b.Release(1 << 40)
	if b.Used() != 0 || b.Limit() != 0 || b.Peak() != 0 || b.Waits() != 0 || b.Denied() != 0 {
		t.Fatal("nil budget reported nonzero stats")
	}
}

// Hammer the budget from many goroutines: accounting must balance to zero
// and never exceed the limit (checked via Peak).
func TestConcurrentReserveRelease(t *testing.T) {
	b, err := New(1000)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				n := int64(1 + i%97)
				if err := b.Reserve(ctx, n); err != nil {
					t.Error(err)
					return
				}
				b.Release(n)
			}
		}()
	}
	wg.Wait()
	if got := b.Used(); got != 0 {
		t.Fatalf("Used after balanced workload = %d, want 0", got)
	}
	if b.Peak() > b.Limit() {
		t.Fatalf("Peak %d exceeded limit %d", b.Peak(), b.Limit())
	}
}
