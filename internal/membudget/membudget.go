// Package membudget provides a byte-accounted memory budget for the
// streaming pipeline: stages that buffer pooled blocks reserve their byte
// cost against a shared budget before allocating and release it when the
// consumer recycles the block. Under pressure a producer either blocks
// (backpressure, the default — memory is bounded and output is exact) or,
// in load-shedding mode, fails fast via TryReserve so the stage can drop
// work explicitly and account for the drop, instead of letting resident
// memory grow with the backlog.
//
// The budget is a counting semaphore over bytes, not an allocator: it
// never touches the memory it accounts for, so a stage can charge any
// resident cost (block columns, derived key columns, routing lists) under
// one limit. All methods are safe for concurrent use.
package membudget

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
)

// Reserver is the reservation face of a Budget. Pipeline stages hold this
// interface so a fault-injection harness can interpose allocation failures
// without the stage knowing.
type Reserver interface {
	// Reserve blocks until n bytes fit under the limit, then charges them.
	// It returns ctx's error (wrapped) if the context is cancelled first.
	Reserve(ctx context.Context, n int64) error
	// TryReserve charges n bytes if they fit under the limit right now and
	// reports whether it did. It never blocks — the load-shedding probe.
	TryReserve(n int64) bool
	// Release returns n bytes charged by a successful Reserve/TryReserve.
	Release(n int64)
}

// Budget is a byte-accounted counting semaphore. The zero value is not
// usable; call New. A nil *Budget is a valid no-op Reserver (every
// reservation succeeds instantly), so call sites need no branching when
// budgeting is off.
type Budget struct {
	mu sync.Mutex
	// wait is closed and replaced on every Release, broadcasting to blocked
	// reservers; each re-checks the limit and re-arms on the new channel.
	wait  chan struct{}
	limit int64
	used  int64
	peak  int64

	waits  atomic.Int64 // Reserve calls that had to block at least once
	denied atomic.Int64 // TryReserve calls that failed
}

// New returns a budget of limit bytes. limit must be positive — a
// zero-byte budget would deadlock its first reserver (use a nil *Budget
// for "no budget").
func New(limit int64) (*Budget, error) {
	if limit <= 0 {
		return nil, fmt.Errorf("membudget: limit must be > 0 bytes, got %d (use a nil budget for unlimited)", limit)
	}
	return &Budget{limit: limit, wait: make(chan struct{})}, nil
}

// clamp caps a single reservation at the whole limit, so one reservation
// larger than the budget degrades to "wait until everything else drains"
// instead of deadlocking forever. Release applies the same clamp, keeping
// the books balanced as long as callers release what they reserved.
func (b *Budget) clamp(n int64) int64 {
	if n > b.limit {
		return b.limit
	}
	return n
}

// Reserve implements Reserver. A nil budget reserves instantly.
func (b *Budget) Reserve(ctx context.Context, n int64) error {
	if b == nil {
		return nil
	}
	blocked := false
	for {
		b.mu.Lock()
		m := b.clamp(n)
		if b.used+m <= b.limit {
			b.used += m
			if b.used > b.peak {
				b.peak = b.used
			}
			b.mu.Unlock()
			return nil
		}
		ch := b.wait
		b.mu.Unlock()
		if !blocked {
			blocked = true
			b.waits.Add(1)
		}
		select {
		case <-ch:
		case <-ctx.Done():
			return fmt.Errorf("membudget: reserving %d bytes: %w", n, ctx.Err())
		}
	}
}

// TryReserve implements Reserver. A nil budget reserves instantly.
func (b *Budget) TryReserve(n int64) bool {
	if b == nil {
		return true
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	m := b.clamp(n)
	if b.used+m > b.limit {
		b.denied.Add(1)
		return false
	}
	b.used += m
	if b.used > b.peak {
		b.peak = b.used
	}
	return true
}

// Release implements Reserver. Releasing more than is reserved is a
// bookkeeping bug on the caller's side and panics. A nil budget is a no-op.
func (b *Budget) Release(n int64) {
	if b == nil {
		return
	}
	b.mu.Lock()
	b.used -= b.clamp(n)
	if b.used < 0 {
		b.mu.Unlock()
		panic(fmt.Sprintf("membudget: release of %d bytes exceeds outstanding reservations", n))
	}
	close(b.wait)
	b.wait = make(chan struct{})
	b.mu.Unlock()
}

// Limit returns the budget's byte limit.
func (b *Budget) Limit() int64 {
	if b == nil {
		return 0
	}
	return b.limit
}

// Used returns the bytes currently reserved.
func (b *Budget) Used() int64 {
	if b == nil {
		return 0
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.used
}

// Peak returns the high-water mark of reserved bytes.
func (b *Budget) Peak() int64 {
	if b == nil {
		return 0
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.peak
}

// Waits returns how many Reserve calls had to block at least once — the
// backpressure counter.
func (b *Budget) Waits() int64 {
	if b == nil {
		return 0
	}
	return b.waits.Load()
}

// Denied returns how many TryReserve calls failed — the load-shedding
// pressure counter.
func (b *Budget) Denied() int64 {
	if b == nil {
		return 0
	}
	return b.denied.Load()
}
