// Command tracegen generates synthetic backbone packet traces (the Sprint
// OC-12 substitutes of Table I) and writes them as standard pcap files that
// tcpdump/wireshark can open and cmd/flowstats can analyse.
//
// With -store it writes the columnar trace store format instead
// (internal/trace/store): segment frames of packed SoA columns plus a
// checkpoint footer, the out-of-core input of `experiments -store` and
// flowd replay.
//
// Usage:
//
//	tracegen -o trace1.pcap                  # trace 1 of the scaled suite
//	tracegen -trace 4 -o quiet.pcap          # the 26 Mb/s (scaled) trace
//	tracegen -duration 60 -lambda 200 -b 2 -o custom.pcap
//	tracegen -store -o trace-1.fstore        # columnar store with footer
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"

	"repro/internal/dist"
	"repro/internal/trace"
	"repro/internal/trace/store"
)

func main() {
	var (
		out      = flag.String("o", "", "output pcap file (required)")
		traceIdx = flag.Int("trace", 1, "Table I trace number 1..7 (suite mode)")
		duration = flag.Float64("duration", 0, "custom mode: trace length in seconds (overrides -trace)")
		lambda   = flag.Float64("lambda", 100, "custom mode: flow arrival rate per second")
		b        = flag.Float64("b", 2, "custom mode: shot exponent (0 rect, 1 tri, 2 parabolic)")
		link     = flag.Float64("link", 100e6, "suite mode: scaled link capacity in bit/s")
		ivl      = flag.Float64("interval", 120, "suite mode: analysis interval seconds")
		perHour  = flag.Float64("perhour", 2, "suite mode: analysis intervals per paper trace hour")
		maxIvl   = flag.Int("maxivl", 2, "suite mode: intervals to generate")
		seed     = flag.Int64("seed", 1, "random seed")
		warmup   = flag.Float64("warmup", 60, "stationarity warm-up in seconds")
		genWork  = flag.Int("genworkers", 1, "packet-synthesis workers (<= 1 = serial generator); output is identical at any count")
		useStore = flag.Bool("store", false, "write a columnar trace store (.fstore) instead of a pcap; the file bytes are identical at any -genworkers")
		ckptEvr  = flag.Float64("ckpt-every", 0, "store mode: seconds between footer checkpoints (0 = the analysis interval in suite mode, no footer in custom mode)")
	)
	flag.Parse()
	if *out == "" {
		fatal(fmt.Errorf("-o is required"))
	}
	if *duration < 0 {
		fatal(fmt.Errorf("-duration must be >= 0 (0 = suite mode), got %g", *duration))
	}
	if *duration > 0 && !(*lambda > 0) {
		fatal(fmt.Errorf("-lambda must be > 0 in custom mode, got %g", *lambda))
	}
	if *b < 0 {
		fatal(fmt.Errorf("-b must be >= 0 (0 rect, 1 tri, 2 parabolic), got %g", *b))
	}
	if !(*link > 0) {
		fatal(fmt.Errorf("-link must be > 0 bit/s, got %g", *link))
	}
	if !(*ivl > 0) {
		fatal(fmt.Errorf("-interval must be > 0 seconds, got %g", *ivl))
	}
	if !(*perHour > 0) {
		fatal(fmt.Errorf("-perhour must be > 0, got %g", *perHour))
	}
	if *maxIvl < 1 {
		fatal(fmt.Errorf("-maxivl must be >= 1 interval, got %d", *maxIvl))
	}
	if *warmup < 0 {
		fatal(fmt.Errorf("-warmup must be >= 0 seconds, got %g", *warmup))
	}
	if *genWork < 0 {
		fatal(fmt.Errorf("-genworkers must be >= 0 (<= 1 = serial generator), got %d", *genWork))
	}

	var cfg trace.Config
	if *duration > 0 {
		size, err := trace.FlowSizeDist()
		if err != nil {
			fatal(err)
		}
		rate, err := trace.FlowRateDist(283e3)
		if err != nil {
			fatal(err)
		}
		cfg = trace.Config{
			Duration:  *duration,
			Lambda:    *lambda,
			SizeBytes: size,
			RateBps:   rate,
			ShotB:     dist.Constant{V: *b},
			Seed:      *seed,
			Warmup:    *warmup,
		}
	} else {
		specs, err := trace.DefaultSuite(trace.SuiteOptions{
			LinkBps:          *link,
			IntervalSec:      *ivl,
			IntervalsPerHour: *perHour,
			MaxIntervals:     *maxIvl,
			Seed:             *seed,
		})
		if err != nil {
			fatal(err)
		}
		if *traceIdx < 1 || *traceIdx > len(specs) {
			fatal(fmt.Errorf("-trace must be 1..%d", len(specs)))
		}
		cfg = specs[*traceIdx-1].Config()
		cfg.Warmup = *warmup
	}

	if *ckptEvr < 0 {
		fatal(fmt.Errorf("-ckpt-every must be >= 0 seconds, got %g", *ckptEvr))
	}

	// SIGINT/SIGTERM abort the run cleanly: generation stops at the next
	// block boundary and no partial output file is left behind.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if *useStore {
		every := *ckptEvr
		if every == 0 && *duration == 0 {
			every = *ivl // suite mode: one footer checkpoint per analysis interval
		}
		sum, err := store.Generate(ctx, *out, cfg, every, store.Options{Workers: *genWork})
		if err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %s: %d packets, %d flows, %.2f Mb/s over %.0f s (columnar store)\n",
			*out, sum.Packets, sum.Flows, sum.AvgRateBps/1e6, sum.Duration)
		return
	}

	recs, sum, err := generateAll(ctx, cfg, *genWork)
	if err != nil {
		fatal(err)
	}
	f, err := os.Create(*out)
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	if err := trace.WritePcap(f, recs); err != nil {
		os.Remove(*out)
		fatal(err)
	}
	if err := f.Close(); err != nil {
		os.Remove(*out)
		fatal(err)
	}
	fmt.Printf("wrote %s: %d packets, %d flows, %.2f Mb/s over %.0f s\n",
		*out, sum.Packets, sum.Flows, sum.AvgRateBps/1e6, sum.Duration)
}

// generateAll materialises the trace like trace.GenerateAllParallel —
// bit-identical output at any worker count — but honours ctx cancellation
// between blocks.
func generateAll(ctx context.Context, cfg trace.Config, workers int) ([]trace.Record, trace.Summary, error) {
	recs := make([]trace.Record, 0, int(cfg.Duration*cfg.Lambda*8))
	sum, err := trace.StreamParallelBlocksCtx(ctx, cfg, workers, func(blk *trace.Block) error {
		for i := 0; i < blk.Len(); i++ {
			recs = append(recs, blk.Record(i))
		}
		return nil
	})
	if err != nil {
		return nil, trace.Summary{}, err
	}
	return recs, sum, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "tracegen:", err)
	os.Exit(1)
}
