// Command repolint runs the repo's invariant suite (internal/analysis):
// determinism, hot-path allocation, trace.Block pool discipline, and core
// kernel float discipline.
//
// Standalone:
//
//	repolint [packages]          # static analyzers (default ./...)
//	repolint -escape [packages]  # + go build -gcflags=-m escape cross-check
//
// As a vet tool, so the suite runs under go vet's package graph and cache:
//
//	go vet -vettool=$(command -v repolint) ./...
//
// Exit status is non-zero when any unsuppressed finding remains; findings
// are suppressed only by the //repro: directives documented in README
// "Invariants", each of which must carry a justification.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/exec"
	"strings"

	"repro/internal/analysis"
	"repro/internal/analysis/framework"
	"repro/internal/analysis/hotpath"
)

func main() {
	versionFlag := flag.String("V", "", "print version (go vet protocol; -V=full)")
	flagsFlag := flag.Bool("flags", false, "print analyzer flags as JSON (go vet protocol)")
	escapeFlag := flag.Bool("escape", false, "also run the go build -gcflags=-m escape-analysis cross-check on //repro:hotpath functions")
	dirFlag := flag.String("C", ".", "directory to run from (module root)")
	flag.Parse()

	if *versionFlag != "" {
		framework.VetVersion("repolint")
		return
	}
	if *flagsFlag {
		fmt.Println("[]")
		return
	}

	args := flag.Args()
	// go vet invokes the tool with a single *.cfg argument describing one
	// package (cwd = the package directory).
	if len(args) == 1 && strings.HasSuffix(args[0], ".cfg") {
		framework.VetMain(args[0], analysis.Suite())
		return
	}

	if len(args) == 0 {
		args = []string{"./..."}
	}
	pkgs, err := framework.Load(*dirFlag, args...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "repolint: %v\n", err)
		os.Exit(1)
	}

	suite := analysis.Suite()
	var diags []framework.Diagnostic
	for _, pkg := range pkgs {
		var in []*framework.Analyzer
		for _, s := range suite {
			if s.Match == nil || s.Match(pkg.ImportPath) {
				in = append(in, s.Analyzer)
			}
		}
		if len(in) == 0 {
			continue
		}
		ds, err := framework.Run(pkg, in)
		if err != nil {
			fmt.Fprintf(os.Stderr, "repolint: %v\n", err)
			os.Exit(1)
		}
		diags = append(diags, ds...)
	}

	if *escapeFlag {
		ds, err := escapeCheck(*dirFlag, args, pkgs)
		if err != nil {
			fmt.Fprintf(os.Stderr, "repolint: escape check: %v\n", err)
			os.Exit(1)
		}
		diags = append(diags, ds...)
	}

	framework.SortDiagnostics(diags)
	for _, d := range diags {
		fmt.Println(d)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "repolint: %d finding(s)\n", len(diags))
		os.Exit(1)
	}
}

// escapeCheck drives the compiler's escape analysis over the requested
// packages and flags any heap allocation inside a //repro:hotpath function.
// The build cache replays -m output, so warm runs are cheap.
func escapeCheck(dir string, patterns []string, pkgs []*framework.Package) ([]framework.Diagnostic, error) {
	ranges := hotpath.Ranges(pkgs)
	if len(ranges) == 0 {
		return nil, nil
	}
	cmd := exec.Command("go", append([]string{"build", "-gcflags=-m=1"}, patterns...)...)
	cmd.Dir = dir
	out, err := cmd.CombinedOutput()
	if err != nil {
		return nil, fmt.Errorf("go build -gcflags=-m: %v\n%s", err, out)
	}
	abs, err := absDir(dir)
	if err != nil {
		return nil, err
	}
	findings := hotpath.ParseBuildOutput(out, abs)
	return hotpath.CheckEscapes(ranges, findings, hotpath.AllocOKLines(pkgs)), nil
}

func absDir(dir string) (string, error) {
	if dir == "." {
		return os.Getwd()
	}
	cwd, err := os.Getwd()
	if err != nil {
		return "", err
	}
	if strings.HasPrefix(dir, "/") {
		return dir, nil
	}
	return cwd + "/" + dir, nil
}
