// Command experiments regenerates the tables and figures of "A flow-based
// model for Internet backbone traffic" (Barakat et al., IMC 2002) on the
// scaled synthetic trace suite. See DESIGN.md §4 for the experiment index
// and EXPERIMENTS.md for paper-vs-measured results.
//
// Usage:
//
//	experiments -run all
//	experiments -run table1,fig9,fig10
//	experiments -run table2 -predsec 1800
//	experiments -link 20e6 -interval 60 -maxivl 4 -run fig9   # quick pass
//	experiments -store stores/ -run table1                    # measure tracegen -store output
//	experiments -shard 0/2 -shard-out s0.shard                # measure half the traces
//	experiments -shard-merge s0.shard,s1.shard -run all       # merge and render
//
// Sharding splits the suite's traces across processes (see
// scripts/shard_demo.sh); the merged output is byte-identical to a
// single-process run with the same flags.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"

	"repro/internal/experiments"
	"repro/internal/trace"
)

func main() {
	var (
		run     = flag.String("run", "all", "comma-separated experiment ids (see -list)")
		list    = flag.Bool("list", false, "list experiment ids and exit")
		link    = flag.Float64("link", 100e6, "scaled link capacity in bit/s (paper: 622e6)")
		ivl     = flag.Float64("interval", 120, "analysis interval in seconds (paper: 1800)")
		perHour = flag.Float64("perhour", 2, "analysis intervals per paper trace hour")
		maxIvl  = flag.Int("maxivl", 0, "cap intervals per trace (0 = paper-proportional)")
		delta   = flag.Float64("delta", 0.2, "rate averaging interval Δ in seconds")
		predSec = flag.Float64("predsec", 1800, "prediction trace length for table2/fig14")
		seed    = flag.Int64("seed", 0, "suite seed offset")
		workers = flag.Int("workers", 0, "interval measurement workers, shared across traces (0 = GOMAXPROCS); output is identical at any count")
		genWork = flag.Int("genworkers", 1, "packet-synthesis workers per trace producer (<= 1 = serial generator); output is identical at any count")
		quiet   = flag.Bool("quiet", false, "summaries only, no per-point output")
		budget  = flag.Int64("membudget", 0, "cap resident bytes of in-flight measurement blocks (0 = unlimited); producers block when it fills")
		shed    = flag.Bool("shed", false, "with -membudget: drop intervals under memory pressure instead of blocking the producer (drops are reported)")

		storeDir   = flag.String("store", "", "read pre-generated trace stores (<dir>/<name>.fstore from tracegen -store, matching suite geometry) instead of synthesising")
		shard      = flag.String("shard", "", "measure only shard i of N traces, written i/N (e.g. 0/2); requires -shard-out")
		shardOut   = flag.String("shard-out", "", "with -shard: write this shard's measurements to the file and exit without rendering")
		shardMerge = flag.String("shard-merge", "", "comma-separated shard files to merge instead of measuring; renders the full suite byte-identically to a single-process run")
	)
	flag.Parse()

	// Validate before any work so a typo'd invocation fails in milliseconds
	// with an actionable message, not after minutes of generation.
	checkPositive := func(name string, v float64) {
		if !(v > 0) {
			fatal(fmt.Errorf("-%s must be > 0, got %g", name, v))
		}
	}
	checkPositive("link", *link)
	checkPositive("interval", *ivl)
	checkPositive("perhour", *perHour)
	checkPositive("delta", *delta)
	checkPositive("predsec", *predSec)
	if *maxIvl < 0 {
		fatal(fmt.Errorf("-maxivl must be >= 0 (0 = paper-proportional), got %d", *maxIvl))
	}
	if *workers < 0 {
		fatal(fmt.Errorf("-workers must be >= 0 (0 = GOMAXPROCS), got %d", *workers))
	}
	if *genWork < 0 {
		fatal(fmt.Errorf("-genworkers must be >= 0 (<= 1 = serial generator), got %d", *genWork))
	}
	if *budget < 0 {
		fatal(fmt.Errorf("-membudget must be >= 0 bytes (0 = unlimited), got %d", *budget))
	}
	if *shed && *budget == 0 {
		fatal(fmt.Errorf("-shed needs a -membudget to shed against"))
	}
	shardIndex, shardCount := 0, 0
	if *shard != "" {
		if _, err := fmt.Sscanf(*shard, "%d/%d", &shardIndex, &shardCount); err != nil || shardCount < 2 || shardIndex < 0 || shardIndex >= shardCount {
			fatal(fmt.Errorf("-shard must be i/N with 0 <= i < N and N >= 2, got %q", *shard))
		}
		if *shardOut == "" {
			fatal(fmt.Errorf("-shard renders a partial suite; use it with -shard-out and merge with -shard-merge"))
		}
		if *shardMerge != "" {
			fatal(fmt.Errorf("-shard and -shard-merge are mutually exclusive"))
		}
	}
	if *shardOut != "" && *shard == "" {
		fatal(fmt.Errorf("-shard-out needs -shard"))
	}

	// Ctrl-C cancels the measurement pass cleanly: producers stop, workers
	// drain, and the run exits with the cancellation error instead of dying
	// mid-write.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	ids := []string{
		"table1", "fig1", "fig3", "fig4", "fig5", "fig6", "fig7", "fig8",
		"fig9", "fig10", "fig11", "fig12", "fig13", "table2", "fig14",
		"appA", "appC",
		"ablation-shots", "ablation-baseline", "ablation-delta",
		"ablation-split", "ablation-smoothing", "ablation-lrd",
	}
	if *list {
		for _, id := range ids {
			fmt.Println(id)
		}
		return
	}

	r, err := experiments.NewRunner(experiments.Options{
		Suite: trace.SuiteOptions{
			LinkBps:          *link,
			IntervalSec:      *ivl,
			IntervalsPerHour: *perHour,
			MaxIntervals:     *maxIvl,
			Seed:             *seed,
		},
		Delta:          *delta,
		Workers:        *workers,
		GenWorkers:     *genWork,
		Quiet:          *quiet,
		Context:        ctx,
		MemBudgetBytes: *budget,
		Shed:           *shed,
		StoreDir:       *storeDir,
		ShardIndex:     shardIndex,
		ShardCount:     shardCount,
	})
	if err != nil {
		fatal(err)
	}
	defer r.Close()

	if *shardOut != "" {
		if err := r.ExportShard(*shardOut); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "experiments: wrote shard %s to %s\n", *shard, *shardOut)
		return
	}
	if *shardMerge != "" {
		if err := r.MergeShards(strings.Split(*shardMerge, ",")...); err != nil {
			fatal(err)
		}
	}

	want := map[string]bool{}
	if *run == "all" {
		for _, id := range ids {
			want[id] = true
		}
	} else {
		for _, id := range strings.Split(*run, ",") {
			id = strings.TrimSpace(id)
			if id != "" {
				want[id] = true
			}
		}
	}

	w := os.Stdout
	dispatch := map[string]func() error{
		"table1":             func() error { return r.Table1(w) },
		"fig1":               func() error { return r.Fig1(w) },
		"fig3":               func() error { return r.Fig3(w) },
		"fig4":               func() error { return r.Fig4(w) },
		"fig5":               func() error { return r.Fig5(w) },
		"fig6":               func() error { return r.Fig6(w) },
		"fig7":               func() error { return r.Fig7(w) },
		"fig8":               func() error { return r.Fig8(w) },
		"fig9":               func() error { return r.Fig9(w) },
		"fig10":              func() error { return r.Fig10(w) },
		"fig11":              func() error { return r.Fig11(w) },
		"fig12":              func() error { return r.Fig12(w) },
		"fig13":              func() error { return r.Fig13(w) },
		"table2":             func() error { return r.Table2(w, *predSec, 1000+*seed) },
		"fig14":              func() error { return r.Fig14(w, *predSec, 1000+*seed) },
		"appA":               func() error { return r.AppA(w) },
		"appC":               func() error { return r.AppC(w, 2000+*seed) },
		"ablation-shots":     func() error { return r.AblationShots(w) },
		"ablation-baseline":  func() error { return r.AblationBaseline(w) },
		"ablation-delta":     func() error { return r.AblationDelta(w) },
		"ablation-split":     func() error { return r.AblationSplit(w) },
		"ablation-smoothing": func() error { return r.AblationSmoothing(w) },
		"ablation-lrd":       func() error { return r.AblationLRD(w) },
	}

	ran := 0
	for _, id := range ids { // canonical order
		if !want[id] {
			continue
		}
		fn, ok := dispatch[id]
		if !ok {
			fatal(fmt.Errorf("unknown experiment id %q", id))
		}
		if err := fn(); err != nil {
			fatal(fmt.Errorf("%s: %w", id, err))
		}
		ran++
		delete(want, id)
	}
	for id := range want {
		fatal(fmt.Errorf("unknown experiment id %q (use -list)", id))
	}
	if ran == 0 {
		fatal(fmt.Errorf("nothing to run"))
	}
	if *shed {
		stats, err := r.ShedStats()
		if err != nil {
			fatal(err)
		}
		for _, s := range stats {
			if s.Intervals > 0 {
				fmt.Fprintf(os.Stderr, "experiments: %s: shed %d intervals (%d records) under memory pressure\n",
					s.Trace, s.Intervals, s.Records)
			}
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "experiments:", err)
	os.Exit(1)
}
