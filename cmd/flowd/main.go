// Command flowd runs the paper's flow-measurement pipeline as a supervised
// online service: it ingests an unbounded packet stream (looping a pcap
// trace or generating synthetic epochs), keeps per-link state resident —
// sliding-window interval series, incremental model refits off the kernel
// caches, online anomaly detection and one-step rate prediction — and
// survives faults: panics and transient ingest failures restart under
// seeded exponential backoff behind a restart-intensity circuit breaker,
// periodic checkpoints bound the loss of a crash to one checkpoint window,
// and SIGINT/SIGTERM drain the partial interval, write a final checkpoint
// and exit 0.
//
// Usage:
//
//	flowd -interval 60 -ckpt /var/lib/flowd            # synthetic ingest
//	flowd -source pcap -in trace.pcap -ckpt ./ckpt     # loop a real trace
//	flowd -membudget 33554432 -shed                    # degrade, don't stall
package main

import (
	"context"
	"flag"
	"fmt"
	"math"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/dist"
	"repro/internal/flow"
	"repro/internal/membudget"
	"repro/internal/service"
	"repro/internal/snapshot"
	"repro/internal/trace"
	tracestore "repro/internal/trace/store"
)

func main() {
	var (
		source  = flag.String("source", "synthetic", "packet source: synthetic or pcap")
		in      = flag.String("in", "", "pcap file to replay (source=pcap)")
		epoch   = flag.Float64("epoch", 600, "epoch length in seconds (generation unit / replay loop length)")
		epochs  = flag.Int64("epochs", 0, "epochs to ingest before a clean stop (0 = run until signalled)")
		lambda  = flag.Float64("lambda", 100, "synthetic: flow arrival rate per second")
		b       = flag.Float64("b", 2, "synthetic: shot exponent (0 rect, 1 tri, 2 parabolic)")
		seed    = flag.Int64("seed", 1, "synthetic: base seed (epoch e generates with seed+e)")
		genWork = flag.Int("genworkers", 1, "synthetic: synthesis workers (<= 1 = serial)")

		interval = flag.Float64("interval", 120, "analysis interval in seconds")
		delta    = flag.Float64("delta", 0.2, "rate averaging interval Δ in seconds")
		window   = flag.Int("window", 32, "interval means kept for the online predictor")
		timeout  = flag.Float64("timeout", flow.DefaultTimeout, "flow timeout in seconds")

		ckptDir   = flag.String("ckpt", "", "checkpoint directory (empty = no checkpointing: a crash loses all state)")
		ckptEvery = flag.Float64("ckpt-every", 0, "stream seconds between checkpoints (0 = one per analysis interval)")

		budgetBytes = flag.Int64("membudget", 0, "ingest-queue memory budget in bytes (0 = unlimited)")
		shed        = flag.Bool("shed", false, "drop ingest blocks (with exact accounting) instead of blocking when the budget is full")

		maxRestarts = flag.Int("max-restarts", 10, "restarts allowed inside -restart-window before giving up")
		restartWin  = flag.Duration("restart-window", 10*time.Minute, "circuit-breaker window")
		backoff     = flag.Duration("backoff", time.Second, "initial restart backoff (doubles up to -backoff-max, with seeded jitter)")
		backoffMax  = flag.Duration("backoff-max", time.Minute, "restart backoff cap")
		healthy     = flag.Duration("healthy-after", time.Minute, "run length that resets the backoff schedule")

		quiet = flag.Bool("quiet", false, "suppress per-interval reports")
	)
	flag.Parse()
	if !(*interval > 0) {
		fatal(fmt.Errorf("-interval must be > 0 seconds, got %g", *interval))
	}
	if !(*delta > 0) || *delta > *interval {
		fatal(fmt.Errorf("-delta must be in (0, interval], got %g", *delta))
	}
	if !(*epoch > 0) {
		fatal(fmt.Errorf("-epoch must be > 0 seconds, got %g", *epoch))
	}
	if *epochs < 0 {
		fatal(fmt.Errorf("-epochs must be >= 0 (0 = unbounded), got %d", *epochs))
	}
	if *budgetBytes < 0 {
		fatal(fmt.Errorf("-membudget must be >= 0 bytes, got %d", *budgetBytes))
	}
	if *shed && *budgetBytes == 0 {
		fatal(fmt.Errorf("-shed needs a -membudget to shed against"))
	}
	if *maxRestarts < 1 {
		fatal(fmt.Errorf("-max-restarts must be >= 1, got %d", *maxRestarts))
	}

	src, err := buildSource(*source, *in, *epoch, *epochs, *lambda, *b, *seed, *genWork)
	if err != nil {
		fatal(err)
	}

	var store *snapshot.Store
	if *ckptDir != "" {
		if err := os.MkdirAll(*ckptDir, 0o755); err != nil {
			fatal(err)
		}
		if store, err = snapshot.OpenStore(*ckptDir); err != nil {
			fatal(err)
		}
	}

	cfg := service.LinkConfig{
		Name:   "flowd",
		Source: src,
		Pipeline: service.PipelineConfig{
			IntervalSec: *interval,
			Delta:       *delta,
			Window:      *window,
			Timeout:     *timeout,
		},
		Store:           store,
		CheckpointEvery: *ckptEvery,
		Shed:            *shed,
	}
	if !*quiet {
		cfg.Pipeline.OnInterval = printReport
	}
	if *budgetBytes > 0 {
		budget, err := membudget.New(*budgetBytes)
		if err != nil {
			fatal(err)
		}
		cfg.Budget = budget
	}
	link, err := service.NewLink(cfg)
	if err != nil {
		fatal(err)
	}

	bo, err := service.NewBackoff(*backoff, *backoffMax, *seed, "flowd")
	if err != nil {
		fatal(err)
	}
	br, err := service.NewBreaker(*maxRestarts, *restartWin, nil)
	if err != nil {
		fatal(err)
	}
	sup := &service.Supervisor{
		Name:         "flowd",
		Backoff:      bo,
		Breaker:      br,
		HealthyAfter: *healthy,
		OnEvent: func(ev service.Event) {
			if ev.Class != service.Transient {
				return
			}
			fmt.Fprintf(os.Stderr, "flowd: run %d ended (%s): %v; restarting in %v\n",
				ev.Restart, ev.Class, ev.Err, ev.Delay)
		},
	}

	// SIGINT/SIGTERM drain: the link flushes the partial interval, writes a
	// final checkpoint, and the supervisor reports a clean stop (exit 0).
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	err = sup.Run(ctx, link.Run)
	st := link.Stats()
	fmt.Fprintf(os.Stderr, "flowd: %d blocks / %d packets measured, %d shed; %d checkpoints, %d restores, %d fresh starts\n",
		st.Blocks, st.Packets, st.ShedPackets, st.Checkpoints, st.Restores, st.FreshStarts)
	if err != nil {
		fatal(err)
	}
}

// buildSource wires the ingest stream: looped synthetic epochs or a looped
// pcap replay.
func buildSource(kind, in string, epoch float64, epochs int64, lambda, b float64, seed int64, genWork int) (service.BlockSource, error) {
	switch kind {
	case "synthetic":
		if !(lambda > 0) {
			return nil, fmt.Errorf("-lambda must be > 0, got %g", lambda)
		}
		if b < 0 {
			return nil, fmt.Errorf("-b must be >= 0, got %g", b)
		}
		size, err := trace.FlowSizeDist()
		if err != nil {
			return nil, err
		}
		rate, err := trace.FlowRateDist(283e3)
		if err != nil {
			return nil, err
		}
		return &service.SyntheticSource{
			Base: trace.Config{
				Duration:  epoch,
				Lambda:    lambda,
				SizeBytes: size,
				RateBps:   rate,
				ShotB:     dist.Constant{V: b},
				Seed:      seed,
			},
			Epochs:     epochs,
			GenWorkers: genWork,
		}, nil
	case "pcap":
		if in == "" {
			return nil, fmt.Errorf("-in is required with -source pcap")
		}
		side, err := ensurePcapStore(in)
		if err != nil {
			return nil, err
		}
		// The reader lives for the process: the service replays straight off
		// the file mapping, so the trace never has to fit in memory.
		r, err := tracestore.Open(side)
		if err != nil {
			return nil, err
		}
		if r.Packets() == 0 {
			r.Close()
			return nil, fmt.Errorf("empty trace %s", in)
		}
		// The replay loop length must cover the trace; grow a too-short
		// -epoch to the trace length instead of refusing to start.
		dur := epoch
		if last := r.LastTime(); dur < last {
			dur = math.Ceil(last)
		}
		return &service.ReplaySource{Reader: r, Duration: dur, Epochs: epochs}, nil
	default:
		return nil, fmt.Errorf("unknown -source %q (synthetic or pcap)", kind)
	}
}

// ensurePcapStore converts a pcap into its columnar sidecar <in>.fstore once;
// later runs (and supervisor restarts) reuse the sidecar while it is newer
// than the pcap, skipping the parse and replaying out-of-core.
func ensurePcapStore(in string) (string, error) {
	side := in + ".fstore"
	pst, err := os.Stat(in)
	if err != nil {
		return "", err
	}
	if sst, err := os.Stat(side); err == nil && sst.ModTime().After(pst.ModTime()) {
		return side, nil
	}
	f, err := os.Open(in)
	if err != nil {
		return "", err
	}
	defer f.Close()
	recs, err := trace.ReadPcap(f)
	if err != nil {
		return "", err
	}
	if len(recs) == 0 {
		return "", fmt.Errorf("empty trace %s", in)
	}
	last := recs[len(recs)-1].Time
	w, err := tracestore.Create(side, tracestore.Meta{Duration: math.Ceil(last)}, tracestore.Options{})
	if err != nil {
		return "", err
	}
	defer w.Abort()
	var sum trace.Summary
	blk := trace.GetBlock()
	defer trace.PutBlock(blk)
	for _, rec := range recs {
		if blk.Len() == trace.BlockSize {
			if err := w.AddBlock(blk); err != nil {
				return "", err
			}
			blk.Reset()
		}
		src, dst := rec.Hdr.Packed()
		blk.Append(rec.Time, rec.Hdr.TotalLen, src, dst)
		sum.Packets++
		sum.Bytes += int64(rec.Hdr.TotalLen)
	}
	if blk.Len() > 0 {
		if err := w.AddBlock(blk); err != nil {
			return "", err
		}
	}
	sum.Duration = math.Ceil(last)
	if err := w.Close(sum); err != nil {
		return "", err
	}
	return side, nil
}

// printReport renders one closed analysis interval.
func printReport(r service.Report) error {
	fit := "    -"
	if r.FitOK {
		fit = fmt.Sprintf("%5.2f", r.FittedB)
	}
	pred := "       -"
	if r.HasPrediction {
		pred = fmt.Sprintf("%8.3f", r.Predicted/1e6)
	}
	partial := ""
	if r.Partial {
		partial = " (partial)"
	}
	fmt.Printf("interval %4d  t=%-9.0f flows=%-6d pkts=%-8d mean=%8.3f Mb/s  cov=%5.1f%%  b=%s  pred=%s Mb/s  anomalies=%d%s\n",
		r.Index, r.Start, r.Flows, r.Packets, r.MeasMean/1e6, r.MeasCoV*100, fit, pred, len(r.Anomalies), partial)
	return nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "flowd:", err)
	os.Exit(1)
}
