module repro

// Deliberately dependency-free. In particular, golang.org/x/tools is NOT
// pinned even though cmd/repolint reimplements a slice of its go/analysis
// API: this repo builds in hermetic containers with no module proxy, so
// internal/analysis/framework mirrors the Analyzer/Pass/Diagnostic surface
// on the stdlib alone (go list -export + go/importer standing in for
// go/packages, a vet.cfg driver standing in for unitchecker). If x/tools
// ever becomes available, pin it here and port the analyzers mechanically.
go 1.24
