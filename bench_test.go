package repro

// Benchmark harness: one benchmark per table and figure of the paper (see
// DESIGN.md §4 for the experiment index). Each benchmark regenerates its
// artefact end to end — trace synthesis, flow measurement, model evaluation
// — on a reduced-scale suite so a full `go test -bench=.` pass stays in the
// minutes range; cmd/experiments runs the same code at full scale.
//
// Reported metrics (b.ReportMetric) carry the headline number of each
// artefact so a benchmark log doubles as a regression record of the
// reproduction quality.

import (
	"context"
	"fmt"
	"io"
	"math"
	"path/filepath"
	"runtime"
	"testing"

	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/dist/rng"
	"repro/internal/experiments"
	"repro/internal/flow"
	"repro/internal/mginf"
	"repro/internal/service"
	"repro/internal/snapshot"
	"repro/internal/timeseries"
	"repro/internal/trace"
	"repro/internal/trace/store"
)

// benchOptions is the reduced scale shared by the suite-wide benchmarks.
func benchOptions() experiments.Options {
	return experiments.Options{
		Suite: trace.SuiteOptions{
			LinkBps:          20e6,
			IntervalSec:      30,
			IntervalsPerHour: 0.3,
			MaxIntervals:     2,
		},
		Quiet: true,
	}
}

func newBenchRunner(b *testing.B) *experiments.Runner {
	b.Helper()
	r, err := experiments.NewRunner(benchOptions())
	if err != nil {
		b.Fatal(err)
	}
	return r
}

// runExperiment wraps the common loop.
func runExperiment(b *testing.B, fn func(*experiments.Runner) error) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		r := newBenchRunner(b)
		if err := fn(r); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable1TraceSuite(b *testing.B) {
	runExperiment(b, func(r *experiments.Runner) error { return r.Table1(io.Discard) })
}

// BenchmarkMeasureSuiteWorkers scales the measurement pass's two-level
// worker pool, isolating the parallel speedup of the streaming pipeline
// (the determinism test guarantees the outputs are identical).
func BenchmarkMeasureSuiteWorkers(b *testing.B) {
	counts := []int{1, 2, 4}
	if n := runtime.GOMAXPROCS(0); n > 4 {
		counts = append(counts, n)
	}
	for _, workers := range counts {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				opts := benchOptions()
				opts.Workers = workers
				r, err := experiments.NewRunner(opts)
				if err != nil {
					b.Fatal(err)
				}
				if err := r.Table1(io.Discard); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkLongTraceWorkers scales the pool on the long-trace scenario that
// motivates intra-trace sharding: interval counts are uncapped, so the
// 39.5 h trace carries ~4× the intervals of the median trace and
// trace-granular parallelism tops out at 7 workers with the longest trace
// as the critical path. Scaling beyond workers=7 (visible on machines with
// more cores; this suite has ~34 interval tasks) is entirely the interval
// level of the scheduler. Single-core runs record the scheduling overhead
// instead.
func BenchmarkLongTraceWorkers(b *testing.B) {
	counts := []int{1, 4, 7}
	if n := runtime.GOMAXPROCS(0); n > 7 {
		counts = append(counts, n)
	}
	for _, workers := range counts {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				opts := benchOptions()
				opts.Suite.MaxIntervals = 0 // paper-proportional interval counts
				opts.Workers = workers
				r, err := experiments.NewRunner(opts)
				if err != nil {
					b.Fatal(err)
				}
				if err := r.Table1(io.Discard); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkFig1FlowSplitting(b *testing.B) {
	runExperiment(b, func(r *experiments.Runner) error { return r.Fig1(io.Discard) })
}

func BenchmarkFig3InterArrivals5Tuple(b *testing.B) {
	runExperiment(b, func(r *experiments.Runner) error { return r.Fig3(io.Discard) })
}

func BenchmarkFig4InterArrivalsPrefix(b *testing.B) {
	runExperiment(b, func(r *experiments.Runner) error { return r.Fig4(io.Discard) })
}

func BenchmarkFig5SizeDurationACF(b *testing.B) {
	runExperiment(b, func(r *experiments.Runner) error { return r.Fig5(io.Discard) })
}

func BenchmarkFig6SizeDurationACFPrefix(b *testing.B) {
	runExperiment(b, func(r *experiments.Runner) error { return r.Fig6(io.Discard) })
}

func BenchmarkFig7ShotShapes(b *testing.B) {
	runExperiment(b, func(r *experiments.Runner) error { return r.Fig7(io.Discard) })
}

func BenchmarkFig8AutoCorrelation(b *testing.B) {
	runExperiment(b, func(r *experiments.Runner) error { return r.Fig8(io.Discard) })
}

// scatterBench runs a CoV scatter figure and reports the share of intervals
// within the paper's ±20% band.
func scatterBench(b *testing.B, def flow.Definition, shotB int, fig func(*experiments.Runner) error) {
	b.Helper()
	var within, total float64
	for i := 0; i < b.N; i++ {
		r := newBenchRunner(b)
		if err := fig(r); err != nil {
			b.Fatal(err)
		}
		sts, err := r.Stats(def)
		if err != nil {
			b.Fatal(err)
		}
		for _, s := range sts {
			model := s.ModelCoV[shotB]
			if s.MeasCoV == 0 || model == 0 {
				continue
			}
			total++
			if math.Abs(model-s.MeasCoV)/s.MeasCoV <= 0.20 {
				within++
			}
		}
	}
	if total > 0 {
		b.ReportMetric(100*within/total, "%within20")
	}
}

func BenchmarkFig9CoVTriangular(b *testing.B) {
	scatterBench(b, flow.By5Tuple, 1, func(r *experiments.Runner) error { return r.Fig9(io.Discard) })
}

func BenchmarkFig10CoVParabolic(b *testing.B) {
	scatterBench(b, flow.By5Tuple, 2, func(r *experiments.Runner) error { return r.Fig10(io.Discard) })
}

func BenchmarkFig11PowerFit(b *testing.B) {
	runExperiment(b, func(r *experiments.Runner) error { return r.Fig11(io.Discard) })
}

func BenchmarkFig12CoVRectPrefix(b *testing.B) {
	scatterBench(b, flow.ByPrefix24, 0, func(r *experiments.Runner) error { return r.Fig12(io.Discard) })
}

func BenchmarkFig13CoVTriPrefix(b *testing.B) {
	scatterBench(b, flow.ByPrefix24, 1, func(r *experiments.Runner) error { return r.Fig13(io.Discard) })
}

func BenchmarkTable2Prediction(b *testing.B) {
	runExperiment(b, func(r *experiments.Runner) error {
		// A shorter prediction trace than the 1800 s default keeps the
		// bench tight while exercising every ℓ.
		return r.Table2(io.Discard, 600, 1)
	})
}

func BenchmarkFig14PredictionSeries(b *testing.B) {
	runExperiment(b, func(r *experiments.Runner) error { return r.Fig14(io.Discard, 600, 1) })
}

func BenchmarkAppADimensioning(b *testing.B) {
	runExperiment(b, func(r *experiments.Runner) error { return r.AppA(io.Discard) })
}

func BenchmarkAppCGenerator(b *testing.B) {
	runExperiment(b, func(r *experiments.Runner) error { return r.AppC(io.Discard, 2) })
}

func BenchmarkAblationShots(b *testing.B) {
	runExperiment(b, func(r *experiments.Runner) error { return r.AblationShots(io.Discard) })
}

func BenchmarkAblationBaseline(b *testing.B) {
	runExperiment(b, func(r *experiments.Runner) error { return r.AblationBaseline(io.Discard) })
}

func BenchmarkAblationDelta(b *testing.B) {
	runExperiment(b, func(r *experiments.Runner) error { return r.AblationDelta(io.Discard) })
}

func BenchmarkAblationSplit(b *testing.B) {
	runExperiment(b, func(r *experiments.Runner) error { return r.AblationSplit(io.Discard) })
}

func BenchmarkAblationSmoothing(b *testing.B) {
	runExperiment(b, func(r *experiments.Runner) error { return r.AblationSmoothing(io.Discard) })
}

func BenchmarkAblationLRD(b *testing.B) {
	runExperiment(b, func(r *experiments.Runner) error { return r.AblationLRD(io.Discard) })
}

// --- Component micro-benchmarks (hot paths of the pipeline) ---

func benchTraceConfig() trace.Config {
	size, _ := dist.NewBoundedPareto(1.3, 1500, 3e5)
	rate, _ := dist.LognormalFromMoments(80e3, 1.5)
	return trace.Config{
		Duration:  30,
		Lambda:    300,
		SizeBytes: size,
		RateBps:   rate,
		ShotB:     dist.Uniform{Lo: 1.5, Hi: 2.5},
		Warmup:    30,
		Seed:      11,
	}
}

// BenchmarkSamplers measures the per-draw cost of the suite's flow-attribute
// laws through the batched face phase 1 uses (256-draw blocks on the rng
// core). ns/op is per draw.
func BenchmarkSamplers(b *testing.B) {
	size, _ := dist.NewBoundedPareto(1.3, 1500, 3e5)
	rate, _ := dist.LognormalFromMoments(80e3, 1.5)
	exp, _ := dist.NewExponential(1)
	mix, _ := dist.NewMixture([]float64{7, 3}, []dist.Sampler{size, rate})
	cases := []struct {
		name string
		s    dist.Sampler
	}{
		{"uniform", dist.Uniform{Lo: 1.5, Hi: 2.5}},
		{"exponential", exp},
		{"boundedpareto", size},
		{"lognormal", rate},
		{"mixture", mix},
	}
	for _, c := range cases {
		b.Run(c.name, func(b *testing.B) {
			r := rng.New(1)
			var buf [256]float64
			for n := 0; n < b.N; n += len(buf) {
				k := len(buf)
				if rem := b.N - n; rem < k {
					k = rem
				}
				dist.SampleN(c.s, buf[:k], r)
			}
		})
	}
}

// BenchmarkProgramsPhase1 isolates the serial RNG-only flow-program pass —
// the floor every -genworkers scaling pushes against.
func BenchmarkProgramsPhase1(b *testing.B) {
	cfg := benchTraceConfig()
	var flows int64
	for i := 0; i < b.N; i++ {
		progs, _, err := trace.Programs(cfg)
		if err != nil {
			b.Fatal(err)
		}
		flows += int64(len(progs))
	}
	b.ReportMetric(float64(flows)/float64(b.N), "flows/op")
}

func BenchmarkTraceGeneration(b *testing.B) {
	var pkts int64
	for i := 0; i < b.N; i++ {
		_, sum, err := trace.GenerateAll(benchTraceConfig())
		if err != nil {
			b.Fatal(err)
		}
		pkts += sum.Packets
	}
	b.ReportMetric(float64(pkts)/float64(b.N), "pkts/op")
}

// BenchmarkTraceGenerationSharded scales the two-phase generator's synthesis
// pool on the component generation benchmark (the determinism tests
// guarantee the packet stream is bit-identical at every count, so this
// isolates pure scheduling cost/speedup). genworkers=1 is the serial
// event-heap generator. Single-core containers record the sharding overhead
// instead of a speedup; see README for the recorded numbers.
func BenchmarkTraceGenerationSharded(b *testing.B) {
	counts := []int{1, 2, 4}
	if n := runtime.GOMAXPROCS(0); n > 4 {
		counts = append(counts, n)
	}
	for _, workers := range counts {
		b.Run(fmt.Sprintf("genworkers=%d", workers), func(b *testing.B) {
			var pkts int64
			for i := 0; i < b.N; i++ {
				n := int64(0)
				sum, err := trace.StreamParallel(benchTraceConfig(), workers, func(trace.Record) error {
					n++
					return nil
				})
				if err != nil {
					b.Fatal(err)
				}
				if n != sum.Packets {
					b.Fatalf("streamed %d packets, summary says %d", n, sum.Packets)
				}
				pkts += sum.Packets
			}
			b.ReportMetric(float64(pkts)/float64(b.N), "pkts/op")
		})
	}
}

// BenchmarkWindowReplayDeepOffset measures replaying a 5 s window near the
// end of a 300 s trace: the prefix variant regenerates everything up to the
// window (O(prefix)), the checkpointed variant jumps to the nearest
// checkpoint and fast-forwards only the overlapping flows (O(window +
// active flows)). The checkpoint index build is a one-off per trace and is
// measured separately.
func BenchmarkWindowReplayDeepOffset(b *testing.B) {
	cfg := benchTraceConfig()
	cfg.Duration = 300
	lo, hi := cfg.Duration-10, cfg.Duration-5
	drain := func(b *testing.B, w trace.Window) {
		n := 0
		for range w.Records() {
			n++
		}
		if n == 0 {
			b.Fatal("window empty")
		}
	}
	b.Run("prefix", func(b *testing.B) {
		w, err := trace.NewWindow(cfg, lo, hi)
		if err != nil {
			b.Fatal(err)
		}
		for i := 0; i < b.N; i++ {
			drain(b, w)
		}
	})
	b.Run("checkpointed", func(b *testing.B) {
		ck, err := trace.NewCheckpoints(cfg, 30)
		if err != nil {
			b.Fatal(err)
		}
		w, err := ck.Window(lo, hi)
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			drain(b, w)
		}
	})
	b.Run("index-build", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := trace.NewCheckpoints(cfg, 30); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkStoreReplay replays the same deep 5 s window as
// BenchmarkWindowReplayDeepOffset, but from a columnar store file: a binary
// search of the segment directory plus a column scan, with no generator
// work at all. Its ns/op against that benchmark's "checkpointed" variant is
// the store-vs-regeneration headline (acceptance floor: 5× faster).
func BenchmarkStoreReplay(b *testing.B) {
	cfg := benchTraceConfig()
	cfg.Duration = 300
	lo, hi := cfg.Duration-10, cfg.Duration-5
	path := filepath.Join(b.TempDir(), "bench.fstore")
	if _, err := store.Generate(context.Background(), path, cfg, 30, store.Options{}); err != nil {
		b.Fatal(err)
	}
	r, err := store.Open(path)
	if err != nil {
		b.Fatal(err)
	}
	defer r.Close()
	w, err := r.Window(lo, hi)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	n := 0
	for i := 0; i < b.N; i++ {
		n = 0
		if err := w.Replay(func(trace.Record) error { n++; return nil }); err != nil {
			b.Fatal(err)
		}
		if n == 0 {
			b.Fatal("window empty")
		}
	}
	b.ReportMetric(float64(n), "pkts/op")
}

// BenchmarkStoreWrite measures synthesising a trace straight into the store
// format — segment frames plus checkpoint footer — per full-trace write.
func BenchmarkStoreWrite(b *testing.B) {
	cfg := benchTraceConfig()
	dir := b.TempDir()
	var pkts int64
	for i := 0; i < b.N; i++ {
		path := filepath.Join(dir, fmt.Sprintf("w%d.fstore", i))
		sum, err := store.Generate(context.Background(), path, cfg, 10, store.Options{})
		if err != nil {
			b.Fatal(err)
		}
		pkts = sum.Packets
	}
	b.ReportMetric(float64(pkts), "pkts/op")
}

func BenchmarkFlowMeasurement(b *testing.B) {
	recs, _, err := trace.GenerateAll(benchTraceConfig())
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := flow.Measure(recs, flow.By5Tuple, flow.DefaultTimeout); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(len(recs)), "pkts/op")
}

// BenchmarkIntervalSplitter measures the one-pass interval pipeline: both
// flow definitions assembled simultaneously while the rate series bins in
// the same sweep — the per-trace inner loop of the experiment suite.
func BenchmarkIntervalSplitter(b *testing.B) {
	recs, _, err := trace.GenerateAll(benchTraceConfig())
	if err != nil {
		b.Fatal(err)
	}
	const intervalSec = 10.0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		binner, err := timeseries.NewBinner(intervalSec, 0.2)
		if err != nil {
			b.Fatal(err)
		}
		s, err := flow.NewIntervalSplitter(
			[]flow.Definition{flow.By5Tuple, flow.ByPrefix24},
			intervalSec, flow.DefaultTimeout,
			func(iv flow.IntervalSet) error { binner.Reset(); return nil },
		)
		if err != nil {
			b.Fatal(err)
		}
		for j := range recs {
			if err := s.Add(recs[j]); err != nil {
				b.Fatal(err)
			}
			binner.Add(recs[j].Time-s.Origin(), recs[j].Bits())
		}
		if err := s.Close(); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(len(recs)), "pkts/op")
}

// blockify packs a record slice into SoA blocks of the given size.
func blockify(recs []trace.Record, size int) []*trace.Block {
	var out []*trace.Block
	for i := 0; i < len(recs); i += size {
		end := i + size
		if end > len(recs) {
			end = len(recs)
		}
		blk := &trace.Block{}
		for _, rec := range recs[i:end] {
			blk.AppendRecord(rec)
		}
		out = append(out, blk)
	}
	return out
}

// BenchmarkAssemblerBlock isolates the flow-assembly hot path under the
// suite's two definitions: the record-at-a-time face (one key derivation
// and table probe per record per definition) against the block face (key
// and hash columns derived once per block, shared across definitions).
// ns/op is per trace pass; pkts/op records the stream length.
func BenchmarkAssemblerBlock(b *testing.B) {
	recs, _, err := trace.GenerateAll(benchTraceConfig())
	if err != nil {
		b.Fatal(err)
	}
	defs := []flow.Definition{flow.By5Tuple, flow.ByPrefix24}
	b.Run("record", func(b *testing.B) {
		m, err := flow.NewMeasurer(defs, flow.DefaultTimeout)
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			m.Reset()
			for j := range recs {
				if err := m.Add(recs[j]); err != nil {
					b.Fatal(err)
				}
			}
			m.Flush()
		}
		b.ReportMetric(float64(len(recs)), "pkts/op")
	})
	b.Run("block", func(b *testing.B) {
		blocks := blockify(recs, trace.BlockSize)
		m, err := flow.NewMeasurer(defs, flow.DefaultTimeout)
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			m.Reset()
			for _, blk := range blocks {
				if err := m.AddBlock(blk); err != nil {
					b.Fatal(err)
				}
			}
			m.Flush()
		}
		b.ReportMetric(float64(len(recs)), "pkts/op")
	})
}

// BenchmarkIntervalSplitterBlocks is BenchmarkIntervalSplitter on the batch
// path: pre-packed blocks through IntervalSplitter.AddBlock and
// Binner.AddBlock — the per-trace inner loop of the experiment suite as the
// scheduler actually runs it.
func BenchmarkIntervalSplitterBlocks(b *testing.B) {
	recs, _, err := trace.GenerateAll(benchTraceConfig())
	if err != nil {
		b.Fatal(err)
	}
	const intervalSec = 10.0
	blocks := blockify(recs, trace.BlockSize)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// One binner over the whole trace: the batch binning work is the
		// same as the per-interval scheduler's, without simulating its
		// per-interval Reinit here.
		binner, err := timeseries.NewBinner(30, 0.2)
		if err != nil {
			b.Fatal(err)
		}
		s, err := flow.NewIntervalSplitter(
			[]flow.Definition{flow.By5Tuple, flow.ByPrefix24},
			intervalSec, flow.DefaultTimeout,
			func(iv flow.IntervalSet) error { return nil },
		)
		if err != nil {
			b.Fatal(err)
		}
		for _, blk := range blocks {
			if err := s.AddBlock(blk); err != nil {
				b.Fatal(err)
			}
			binner.AddBlock(blk)
		}
		if err := s.Close(); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(len(recs)), "pkts/op")
}

// BenchmarkTraceStreaming exercises the generator through the iterator face
// used by the suite workers (no trace materialisation).
func BenchmarkTraceStreaming(b *testing.B) {
	var pkts int64
	for i := 0; i < b.N; i++ {
		n := 0
		sum, err := trace.Stream(benchTraceConfig(), func(trace.Record) error {
			n++
			return nil
		})
		if err != nil {
			b.Fatal(err)
		}
		if int64(n) != sum.Packets {
			b.Fatalf("streamed %d packets, summary says %d", n, sum.Packets)
		}
		pkts += sum.Packets
	}
	b.ReportMetric(float64(pkts)/float64(b.N), "pkts/op")
}

func BenchmarkRateBinning(b *testing.B) {
	recs, _, err := trace.GenerateAll(benchTraceConfig())
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := timeseries.Bin(recs, 30, 0.2); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkModelVariance(b *testing.B) {
	recs, _, err := trace.GenerateAll(benchTraceConfig())
	if err != nil {
		b.Fatal(err)
	}
	res, err := flow.Measure(recs, flow.By5Tuple, flow.DefaultTimeout)
	if err != nil {
		b.Fatal(err)
	}
	in, err := core.InputFromFlows(res.Flows, 30)
	if err != nil {
		b.Fatal(err)
	}
	m, err := in.Model(core.Parabolic)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = m.Variance()
	}
	b.ReportMetric(float64(len(m.Flows)), "flows/op")
}

func BenchmarkModelAveragedVariance(b *testing.B) {
	recs, _, err := trace.GenerateAll(benchTraceConfig())
	if err != nil {
		b.Fatal(err)
	}
	res, err := flow.Measure(recs, flow.By5Tuple, flow.DefaultTimeout)
	if err != nil {
		b.Fatal(err)
	}
	in, err := core.InputFromFlows(res.Flows, 30)
	if err != nil {
		b.Fatal(err)
	}
	m, err := in.Model(core.Triangular)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.AveragedVariance(0.2); err != nil {
			b.Fatal(err)
		}
	}
}

// benchModelInput measures the benchmark trace's 5-tuple flows once and
// returns the model input the batched-kernel benchmarks share.
func benchModelInput(b *testing.B) core.Input {
	b.Helper()
	recs, _, err := trace.GenerateAll(benchTraceConfig())
	if err != nil {
		b.Fatal(err)
	}
	res, err := flow.Measure(recs, flow.By5Tuple, flow.DefaultTimeout)
	if err != nil {
		b.Fatal(err)
	}
	in, err := core.InputFromFlows(res.Flows, 30)
	if err != nil {
		b.Fatal(err)
	}
	return in
}

// BenchmarkAveragedVarianceBatch is the Δ-sweep face: seven averaging
// intervals against one population pass (AblationDelta's workload).
func BenchmarkAveragedVarianceBatch(b *testing.B) {
	in := benchModelInput(b)
	m, err := in.Model(core.Triangular)
	if err != nil {
		b.Fatal(err)
	}
	deltas := []float64{0.05, 0.1, 0.2, 0.4, 0.8, 2, 5}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.AveragedVarianceBatch(deltas); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(len(deltas)), "deltas/op")
}

// BenchmarkLSTBatch is the transform-sweep face: eight θ points against one
// population pass (the dimensioning searches probe the transform like this).
func BenchmarkLSTBatch(b *testing.B) {
	in := benchModelInput(b)
	m, err := in.Model(core.Parabolic)
	if err != nil {
		b.Fatal(err)
	}
	mu := m.Mean()
	thetas := make([]float64, 8)
	for i := range thetas {
		thetas[i] = float64(i+1) / (4 * mu)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.LSTBatch(thetas); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(len(thetas)), "thetas/op")
}

// BenchmarkModelSuite mirrors the per-interval model work of the Table I
// measurement pass: columnar input assembly into a pooled population, the
// three shot-shape eq.(7) kernels, and the §V-D exponent fit.
func BenchmarkModelSuite(b *testing.B) {
	recs, _, err := trace.GenerateAll(benchTraceConfig())
	if err != nil {
		b.Fatal(err)
	}
	res, err := flow.Measure(recs, flow.By5Tuple, flow.DefaultTimeout)
	if err != nil {
		b.Fatal(err)
	}
	var kernels [3]*core.AvgVarKernel
	for bb := range kernels {
		k, err := core.NewAvgVarKernel(bb, 0.2)
		if err != nil {
			b.Fatal(err)
		}
		kernels[bb] = k
	}
	pop := &core.FlowPop{}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		in, err := core.InputFromFlowsPop(pop, res.Flows, 30)
		if err != nil {
			b.Fatal(err)
		}
		for _, k := range kernels {
			if _, err := k.AveragedVariance(in.Lambda, pop); err != nil {
				b.Fatal(err)
			}
		}
		if _, _, err := core.FitPowerB(in.Lambda*in.MeanS2OverD, in.Lambda, in.MeanS2OverD); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(pop.Len()), "flows/op")
}

// BenchmarkServiceIngest measures the flowd daemon's steady-state ingest
// path: one epoch of the benchmark trace streamed through a supervised
// link — owned-block queueing, both flow definitions measured per block,
// interval closing with the incremental model refit — without and with
// per-interval checkpointing (snapshot encode + fsync + rename per
// interval). ns/op is per epoch; pkts/op records the stream length.
func BenchmarkServiceIngest(b *testing.B) {
	base := benchTraceConfig()
	run := func(b *testing.B, store *snapshot.Store) {
		var pkts int64
		for i := 0; i < b.N; i++ {
			link, err := service.NewLink(service.LinkConfig{
				Name:   "bench",
				Source: &service.SyntheticSource{Base: base, Epochs: 1},
				Pipeline: service.PipelineConfig{
					IntervalSec: 10,
					Delta:       0.2,
				},
				Store: store,
			})
			if err != nil {
				b.Fatal(err)
			}
			if err := link.Run(context.Background()); err != nil {
				b.Fatal(err)
			}
			pkts += link.Stats().Packets
		}
		b.ReportMetric(float64(pkts)/float64(b.N), "pkts/op")
	}
	b.Run("plain", func(b *testing.B) { run(b, nil) })
	b.Run("checkpointed", func(b *testing.B) {
		store, err := snapshot.OpenStore(b.TempDir())
		if err != nil {
			b.Fatal(err)
		}
		run(b, store)
	})
}

func BenchmarkMGInfSimulation(b *testing.B) {
	e, err := dist.NewExponential(1)
	if err != nil {
		b.Fatal(err)
	}
	q, err := mginf.New(200, e)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := rng.New(int64(i))
		if _, err := q.Simulate(100, 0.5, r); err != nil {
			b.Fatal(err)
		}
	}
}
